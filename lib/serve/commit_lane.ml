(* The single-writer commit lane.

   Every write statement from every session serializes through one
   dedicated domain.  The lane drains its bounded queue into a batch,
   executes each statement on the master engine (each statement commits
   its WAL records + marker under sync policy [Off]), then issues ONE
   fsync for the whole batch ({!Durable.Store.sync}), publishes a fresh
   MVCC snapshot for readers, and only then acks every session in the
   batch — so an acked commit is always durable, and one fsync
   amortizes over the batch (fsyncs/commit < 1 under concurrent load).

   Crash semantics (the recovery fuzz drives this with Fault.arm_crash):
   when a statement's WAL write crashes mid-batch, the store is dead;
   the crashed statement and everything after it in the queue fail with
   a typed Durability error and the lane refuses further work.  Earlier
   statements in the batch were fully written but never acked — they
   may or may not survive, which is exactly the at-least-once ambiguity
   an unacknowledged commit is allowed; recovery restores a prefix of
   the lane's execution order, and every *acked* statement is in it.

   Admission is fail-fast: a full queue rejects with [`Overloaded]
   immediately (callers decide whether to retry with backoff — see
   {!Retry}), a draining lane with [`Draining], a crashed lane with
   [`Dead].  Never blocks a submitter. *)

type request = {
  sql : string;
  strategy : string option;
  session : int;
  deadline : float option;  (* per-statement guard deadline, seconds *)
  max_rows : int option;  (* per-statement guard row budget *)
  mutable outcome : outcome option;
}

and outcome = Done of Sqleval.Eval.exec_result | Failed of exn

type reject = [ `Overloaded | `Draining | `Dead ]

type config = {
  queue_cap : int;  (* max queued requests before [`Overloaded] *)
  max_batch : int;  (* max statements per group-commit batch *)
  batch_window : float;
      (* seconds to linger when a drained batch holds a single request:
         one more drain after the linger picks up stragglers, which is
         what makes group commit amortize even under few writers *)
  sync_each : bool;
      (* true = fsync per commit (policy Always downstream); false =
         one explicit sync per batch (policy Off downstream) *)
}

let default_config =
  { queue_cap = 256; max_batch = 64; batch_window = 0.001; sync_each = false }

type stats = {
  submitted : int;
  committed : int;
  failed : int;
  rejected : int;
  batches : int;
  fsyncs : int;
  max_batch_size : int;
  queue_depth : int;
  storage_degraded : bool;
      (* the lane died because storage failed (fsync EIO), not because
         of a crash: operator signal surfaced through serve stats *)
}

type t = {
  cfg : config;
  exec : request -> Sqleval.Eval.exec_result;
  sync_wal : unit -> unit;
  publish : unit -> unit;
  on_exec : (string -> unit) option;  (* fuzz hook: execution order *)
  mu : Mutex.t;
  nonempty : Condition.t;
  completed : Condition.t;
  q : request Queue.t;
  mutable stopping : bool;
  mutable dead : bool;  (* crashed or fully stopped: reject everything *)
  mutable crash : exn option;  (* the Fault.Crash that killed the lane *)
  mutable storage_failed : bool;  (* dead because the batch fsync failed *)
  (* counters, all under [mu] *)
  mutable submitted : int;
  mutable committed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable batches : int;
  mutable fsyncs : int;
  mutable max_batch_size : int;
  batch_sizes : Histo.t;
  mutable domain : unit Domain.t option;
}

let submit t ~session ?strategy ?deadline ?max_rows sql :
    (request, reject) result =
  Mutex.lock t.mu;
  let r =
    if t.dead then Error `Dead
    else if t.stopping then Error `Draining
    else if Queue.length t.q >= t.cfg.queue_cap then begin
      t.rejected <- t.rejected + 1;
      Error `Overloaded
    end
    else begin
      let req =
        { sql; strategy; session; deadline; max_rows; outcome = None }
      in
      Queue.push req t.q;
      t.submitted <- t.submitted + 1;
      Condition.signal t.nonempty;
      Ok req
    end
  in
  Mutex.unlock t.mu;
  r

(* Block until the lane resolves [req]; the ack happens only after the
   batch's fsync, so [Done] implies durable. *)
let await t (req : request) : outcome =
  Mutex.lock t.mu;
  while req.outcome = None do
    Condition.wait t.completed t.mu
  done;
  let o = Option.get req.outcome in
  Mutex.unlock t.mu;
  o

exception Lane_rejected of reject

(* Submit with bounded retry on [`Overloaded] (exponential backoff +
   jitter), then await.  [`Draining] and [`Dead] never retry.  [rand]
   is the jitter stream — pass {!Retry.seeded_rand} to make the
   resubmission timing replay deterministically under fuzz. *)
let submit_retry ?(policy = Retry.default) ?rand t ~session ?strategy ?deadline
    ?max_rows ~on_retry sql : (outcome, reject) result =
  let attempt () =
    match submit t ~session ?strategy ?deadline ?max_rows sql with
    | Ok req -> req
    | Error r -> raise (Lane_rejected r)
  in
  match
    Retry.run ~policy ?rand
      ~retryable:(function Lane_rejected `Overloaded -> on_retry (); true | _ -> false)
      attempt
  with
  | req -> Ok (await t req)
  | exception Lane_rejected r -> Error r
  | exception Retry.Gave_up _ -> Error `Overloaded

let drain_batch t =
  let batch = ref [] in
  let n = ref 0 in
  while (not (Queue.is_empty t.q)) && !n < t.cfg.max_batch do
    batch := Queue.pop t.q :: !batch;
    incr n
  done;
  List.rev !batch

let resolve t reqs outcome_of =
  Mutex.lock t.mu;
  List.iter
    (fun r ->
      (match outcome_of r with
      | Done _ -> t.committed <- t.committed + 1
      | Failed _ -> t.failed <- t.failed + 1);
      r.outcome <- Some (outcome_of r))
    reqs;
  Condition.broadcast t.completed;
  Mutex.unlock t.mu

let run_batch t batch =
  (* Execute each statement; a crash poisons the rest of the batch. *)
  let crashed = ref None in
  let outcomes =
    List.map
      (fun req ->
        match !crashed with
        | Some e ->
            ( req,
              Failed
                (Taupsm_error.Error
                   (Taupsm_error.make Taupsm_error.Durability
                      (Printf.sprintf "write lane dead: %s"
                         (Printexc.to_string e)))) )
        | None -> (
            (match t.on_exec with Some f -> f req.sql | None -> ());
            match t.exec req with
            | r -> (req, Done r)
            | exception (Fault.Crash _ as e) ->
                crashed := Some e;
                ( req,
                  Failed
                    (Taupsm_error.Error
                       (Taupsm_error.make Taupsm_error.Durability
                          "commit not acknowledged: server crashed before \
                           the batch fsync")) )
            | exception e -> (req, Failed e)))
      batch
  in
  let sync_failed = ref None in
  (match !crashed with
  | Some e ->
      Mutex.lock t.mu;
      t.dead <- true;
      t.crash <- Some e;
      Mutex.unlock t.mu
  | None -> (
      (* group commit: one fsync covers every commit marker in the
         batch; only then are sessions acked *)
      match
        if not t.cfg.sync_each then t.sync_wal ();
        t.publish ()
      with
      | () ->
          Mutex.lock t.mu;
          t.batches <- t.batches + 1;
          t.fsyncs <-
            (t.fsyncs + if t.cfg.sync_each then List.length batch else 1);
          let bs = List.length batch in
          if bs > t.max_batch_size then t.max_batch_size <- bs;
          Histo.add t.batch_sizes (float_of_int bs);
          Mutex.unlock t.mu
      | exception (Fault.Crash _ as e) ->
          crashed := Some e;
          Mutex.lock t.mu;
          t.dead <- true;
          t.crash <- Some e;
          Mutex.unlock t.mu
      | exception e ->
          (* the batch fsync failed: the store can no longer promise
             durability, so nothing in this batch may be acked.  The
             lane poisons the batch with a typed [storage degraded]
             status and dies — the serve loop stays up and reports it,
             rather than dying with the exception. *)
          sync_failed := Some e;
          Mutex.lock t.mu;
          t.dead <- true;
          t.storage_failed <- true;
          t.crash <- Some e;
          Mutex.unlock t.mu));
  let outcome_of r =
    match List.assq r outcomes with
    | Done _ when !sync_failed <> None ->
        Failed
          (Taupsm_error.Error
             (Taupsm_error.make Taupsm_error.Durability
                (Printf.sprintf
                   "storage degraded: batch fsync failed (%s); commit not \
                    acknowledged"
                   (match !sync_failed with
                   | Some e -> Printexc.to_string e
                   | None -> "unknown"))))
    | o -> o
  in
  resolve t (List.map fst outcomes) outcome_of;
  !crashed = None && !sync_failed = None

let rec lane_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.nonempty t.mu
  done;
  if Queue.is_empty t.q && t.stopping then begin
    t.dead <- true;
    Mutex.unlock t.mu
  end
  else begin
    let batch = drain_batch t in
    Mutex.unlock t.mu;
    (* a singleton batch lingers briefly for stragglers: under
       concurrent writers this is what turns N fsyncs into one *)
    let batch =
      if List.length batch = 1 && t.cfg.batch_window > 0. && not t.stopping
      then begin
        Unix.sleepf t.cfg.batch_window;
        Mutex.lock t.mu;
        let more = drain_batch t in
        Mutex.unlock t.mu;
        batch @ more
      end
      else batch
    in
    if run_batch t batch then lane_loop t
    else begin
      (* crashed: fail everything still queued, then exit *)
      Mutex.lock t.mu;
      let rest = ref [] in
      Queue.iter (fun r -> rest := r :: !rest) t.q;
      Queue.clear t.q;
      Mutex.unlock t.mu;
      resolve t (List.rev !rest) (fun _ ->
          Failed
            (Taupsm_error.Error
               (Taupsm_error.make Taupsm_error.Durability
                  "write lane dead: server crashed")))
    end
  end

let create ?(cfg = default_config) ?on_exec ~exec ~sync_wal ~publish () =
  let t =
    {
      cfg;
      exec;
      sync_wal;
      publish;
      on_exec;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      completed = Condition.create ();
      q = Queue.create ();
      stopping = false;
      dead = false;
      crash = None;
      storage_failed = false;
      submitted = 0;
      committed = 0;
      failed = 0;
      rejected = 0;
      batches = 0;
      fsyncs = 0;
      max_batch_size = 0;
      batch_sizes = Histo.create ();
      domain = None;
    }
  in
  t.domain <-
    Some
      (Domain.spawn (fun () ->
           (* keep a simulated crash from escaping the domain: the lane
              records it and dies quietly, like the process would *)
           try lane_loop t with Fault.Crash _ -> ()));
  t

(* Stop accepting, finish everything already queued (group-committing
   as usual), then shut the lane domain down.  Pending submitters are
   acked or failed before this returns. *)
let drain t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  match t.domain with
  | Some d ->
      Domain.join d;
      t.domain <- None
  | None -> ()

let crashed t =
  Mutex.lock t.mu;
  let c = t.crash in
  Mutex.unlock t.mu;
  c

let stats t : stats =
  Mutex.lock t.mu;
  let s =
    {
      submitted = t.submitted;
      committed = t.committed;
      failed = t.failed;
      rejected = t.rejected;
      batches = t.batches;
      fsyncs = t.fsyncs;
      max_batch_size = t.max_batch_size;
      queue_depth = Queue.length t.q;
      storage_degraded = t.storage_failed;
    }
  in
  Mutex.unlock t.mu;
  s

let batch_p50 t =
  Mutex.lock t.mu;
  let v = Histo.p50 t.batch_sizes in
  Mutex.unlock t.mu;
  v

let fsyncs_per_commit t =
  let s = stats t in
  if s.committed = 0 then 1.0
  else float_of_int s.fsyncs /. float_of_int s.committed
