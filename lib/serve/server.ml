(* The multi-session server.

   Architecture (one process, OCaml 5 domains):

   - The caller's thread runs the accept loop: bind, listen, accept
     with a 250 ms select tick so a drain request is noticed promptly.
     Admission control lives here — a connection beyond the bounded
     pending queue is told {"error":{"code":"overloaded"}} and closed
     immediately (fail fast, never hang).
   - A fixed pool of worker domains each serves one session at a time:
     read statements execute lock-free against the currently published
     MVCC snapshot (a private {!Sqleval.Catalog.read_view} per
     statement, with the session's guard deadline / row budget); write
     statements are submitted to the single-writer {!Commit_lane},
     which group-commits across sessions and acks only after the
     batch's fsync.
   - Idle sessions are closed after [idle_timeout].
   - Drain (SIGTERM → {!request_drain}): stop accepting, tell queued
     sessions "draining", let in-flight statements finish under
     [drain_deadline], flush the WAL, exit 0.

   Snapshot publication: the lane calls {!Sqleval.Catalog.publish}
   after each batch and stores the frozen catalog in an [Atomic.t].
   Readers [Atomic.get] it per statement — the OCaml memory model makes
   the atomic a release/acquire pair, so everything the writer did
   before publishing is visible — and never block a writer or each
   other. *)

type config = {
  host : string;
  port : int;  (* 0 = ephemeral; see {!port} for the bound one *)
  workers : int;  (* worker domains = max concurrent sessions *)
  queue_depth : int;  (* accepted-but-unserved connections *)
  idle_timeout : float;  (* seconds a session may sit between requests *)
  drain_deadline : float;  (* seconds to let in-flight work finish *)
  stmt_deadline : float option;  (* per-statement guard deadline *)
  max_rows : int option;  (* per-statement guard row budget *)
  retry_seed : int option;
      (* when set, write-lane resubmission jitter is drawn from a
         per-session stream seeded from this, so serve-fuzz failures
         replay with identical backoff timing *)
  default_strategy : Taupsm.Stratum.strategy option;
      (* forced strategy for requests that don't carry their own; None
         (the default) leaves the choice to the engine — the adaptive
         chooser when its [auto_strategy] option is on, MAX otherwise *)
  lane : Commit_lane.config;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    workers = 4;
    queue_depth = 16;
    idle_timeout = 60.;
    drain_deadline = 10.;
    stmt_deadline = Some 30.;
    max_rows = None;
    retry_seed = None;
    default_strategy = None;
    lane = Commit_lane.default_config;
  }

let protocol_version = 1

type snapshot = {
  snap_cat : Sqleval.Catalog.t;  (* frozen; readers take read_views *)
  snap_now : Sqldb.Date.t;
  snap_serial : int;  (* durable commit serial at publication *)
}

(* Mutable server-wide counters, all under [mmu]. *)
type metrics = {
  mmu : Mutex.t;
  mutable sessions : int;
  mutable admission_rejections : int;
  mutable drained_connections : int;
  mutable idle_closes : int;
  mutable reads : int;
  mutable writes : int;
  mutable errors : int;
  mutable write_retries : int;
  read_latency : Histo.t;
  write_latency : Histo.t;
}

type t = {
  cfg : config;
  master : Sqleval.Engine.t;
  persist : Sqleval.Persist.handle option;
  published : snapshot Atomic.t;
  lane : Commit_lane.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  qmu : Mutex.t;
  qcond : Condition.t;
  connq : Unix.file_descr Queue.t;
  busy : int Atomic.t;  (* workers currently inside a session *)
  active_fds : (int, Unix.file_descr) Hashtbl.t;  (* under qmu *)
  session_ctr : int Atomic.t;
  m : metrics;
  mutable workers : unit Domain.t list;
  started : float;
}

let port t = t.bound_port

(* ------------------------------------------------------------------ *)
(* Publication                                                         *)
(* ------------------------------------------------------------------ *)

let publish_snapshot t =
  let serial =
    match t.persist with Some h -> Sqleval.Persist.serial h | None -> 0
  in
  Atomic.set t.published
    {
      snap_cat = Sqleval.Catalog.publish (Sqleval.Engine.catalog t.master);
      snap_now = Sqleval.Engine.now t.master;
      snap_serial = serial;
    }

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let strategy_of_string = function
  | "max" -> Ok (Some Taupsm.Stratum.Max)
  | "perst" -> Ok (Some Taupsm.Stratum.Perst)
  | "auto" -> Ok None
      (* no forced strategy: the engine's adaptive chooser decides when
         its [auto_strategy] option is on (the CLI default), else MAX *)
  | s -> Error (Printf.sprintf "unknown strategy %S (want auto|max|perst)" s)

(* Execute a read-only statement against the published snapshot: a
   private read view pins the snapshot for the duration (later
   publications are invisible), with the session's own guard budgets. *)
let exec_read t ?strategy (ts : Sqlast.Ast.temporal_stmt) =
  let snap = Atomic.get t.published in
  let view = Sqleval.Catalog.read_view snap.snap_cat in
  let o = view.Sqleval.Catalog.options in
  o.Sqleval.Catalog.jobs <- 1;
  (* inter-query parallelism is the sessions themselves *)
  let g = o.Sqleval.Catalog.guards in
  g.Guard.deadline_seconds <- t.cfg.stmt_deadline;
  g.Guard.row_budget <- t.cfg.max_rows;
  let e = Sqleval.Engine.of_catalog ~now:snap.snap_now view in
  Taupsm.Stratum.exec ?strategy e ts

(* The lane's executor: runs on the lane domain against the master
   engine, under the submitting session's guard budgets. *)
let exec_write t (req : Commit_lane.request) =
  let g = Sqleval.Engine.guards t.master in
  g.Guard.deadline_seconds <- req.Commit_lane.deadline;
  g.Guard.row_budget <- req.Commit_lane.max_rows;
  let strategy =
    match req.Commit_lane.strategy with
    | Some s -> (
        match strategy_of_string s with Ok st -> st | Error _ -> None)
    | None -> None
  in
  Taupsm.Stratum.exec_sql ?strategy t.master req.Commit_lane.sql

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let rec write_all fd s pos len =
  if len > 0 then
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)

let send_json fd j =
  let line = Json.to_string j ^ "\n" in
  try
    write_all fd line 0 (String.length line);
    true
  with Unix.Unix_error _ -> false

type reader = {
  rfd : Unix.file_descr;
  chunk : Bytes.t;
  mutable acc : string;
}

let make_reader fd = { rfd = fd; chunk = Bytes.create 65536; acc = "" }

type read_ev = Line of string | Eof | Idle | Drain

(* Read one '\n'-terminated line, waking every 250 ms to notice a drain
   request, and giving up after [idle] seconds without a complete
   request.  Statements in flight are unaffected — idleness is only
   measured while waiting for input. *)
let read_line_ev t rd ~idle =
  let deadline = Mono_clock.now () +. idle in
  let rec go () =
    match String.index_opt rd.acc '\n' with
    | Some i ->
        let line = String.sub rd.acc 0 i in
        rd.acc <- String.sub rd.acc (i + 1) (String.length rd.acc - i - 1);
        Line line
    | None ->
        if Atomic.get t.stop then Drain
        else if Mono_clock.now () > deadline then Idle
        else begin
          match Unix.select [ rd.rfd ] [] [] 0.25 with
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read rd.rfd rd.chunk 0 (Bytes.length rd.chunk) with
              | 0 -> Eof
              | n ->
                  rd.acc <- rd.acc ^ Bytes.sub_string rd.chunk 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error _ -> Eof)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error _ -> Eof
        end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let histo_json h =
  Json.Obj
    [
      ("count", Json.Int (Histo.count h));
      ("mean_seconds", Json.Float (Histo.mean h));
      ("p50_seconds", Json.Float (Histo.p50 h));
      ("p90_seconds", Json.Float (Histo.p90 h));
      ("p99_seconds", Json.Float (Histo.p99 h));
      ("max_seconds", Json.Float (Histo.max_value h));
    ]

let stats_json t =
  let ls = Commit_lane.stats t.lane in
  Mutex.lock t.m.mmu;
  let j =
    Json.Obj
      [
        ("uptime_seconds", Json.Float (Mono_clock.now () -. t.started));
        ("sessions", Json.Int t.m.sessions);
        ("busy_workers", Json.Int (Atomic.get t.busy));
        ("admission_rejections", Json.Int t.m.admission_rejections);
        ("idle_closes", Json.Int t.m.idle_closes);
        ("reads", Json.Int t.m.reads);
        ("writes", Json.Int t.m.writes);
        ("errors", Json.Int t.m.errors);
        ("write_retries", Json.Int t.m.write_retries);
        ("read_latency", histo_json t.m.read_latency);
        ("write_latency", histo_json t.m.write_latency);
        ("snapshot_serial", Json.Int (Atomic.get t.published).snap_serial);
        ( "lane",
          Json.Obj
            [
              ("submitted", Json.Int ls.Commit_lane.submitted);
              ("committed", Json.Int ls.Commit_lane.committed);
              ("failed", Json.Int ls.Commit_lane.failed);
              ("rejected", Json.Int ls.Commit_lane.rejected);
              ("batches", Json.Int ls.Commit_lane.batches);
              ("fsyncs", Json.Int ls.Commit_lane.fsyncs);
              ("max_batch", Json.Int ls.Commit_lane.max_batch_size);
              ("queue_depth", Json.Int ls.Commit_lane.queue_depth);
              ( "fsyncs_per_commit",
                Json.Float (Commit_lane.fsyncs_per_commit t.lane) );
              ( "storage_degraded",
                Json.Bool ls.Commit_lane.storage_degraded );
            ] );
        ( "storage_degraded",
          Json.Bool
            (ls.Commit_lane.storage_degraded
            ||
            match t.persist with
            | Some h -> Sqleval.Persist.is_degraded h
            | None -> false) );
      ]
  in
  Mutex.unlock t.m.mmu;
  j

(* ------------------------------------------------------------------ *)
(* Session loop                                                        *)
(* ------------------------------------------------------------------ *)

let classify_error e =
  match e with
  | Taupsm_error.Error te -> te
  | e -> Taupsm.Resilient.classify e

(* ------------------------------------------------------------------ *)
(* Operator ops: scrub and hot backup                                   *)
(* ------------------------------------------------------------------ *)

let scrub_json (r : Durable.Store.scrub_report) =
  Json.Obj
    [
      ("recoverable_serial", Json.Int r.Durable.Store.recoverable_serial);
      ("intact_generations", Json.Int r.Durable.Store.intact_generations);
      ( "quarantined",
        Json.List (List.map (fun f -> Json.Str f) r.Durable.Store.quarantined)
      );
      ( "generations",
        Json.List
          (List.map
             (fun (g : Durable.Store.gen_status) ->
               Json.Obj
                 [
                   ("id", Json.Int g.Durable.Store.gen_id);
                   ("snap_ok", Json.Bool g.Durable.Store.snap_ok);
                   ("wal_stop", Json.Str g.Durable.Store.wal_stop);
                   ("wal_commits", Json.Int g.Durable.Store.wal_commits);
                   ("last_serial", Json.Int g.Durable.Store.wal_last_serial);
                 ])
             r.Durable.Store.generations) );
    ]

let backup_json (r : Durable.Store.backup_report) =
  Json.Obj
    [
      ("snapshot_id", Json.Int r.Durable.Store.backup_snapshot_id);
      ("serial", Json.Int r.Durable.Store.backup_serial);
      ("wal_bytes", Json.Int r.Durable.Store.backup_wal_bytes);
      ("snap_bytes", Json.Int r.Durable.Store.backup_snap_bytes);
    ]

(* Both run on the worker domain serving this session — never on the
   commit lane, which keeps batching while the walk/copy proceeds.
   They only read immutable files (and rename strictly-older corrupt
   generations aside), so concurrent commits are safe. *)
let handle_scrub t ~id fd =
  match t.persist with
  | None ->
      send_json fd
        (Wire.error ?id ~code:"bad_request"
           ~message:"server is running without a durable store" ())
  | Some h -> (
      match
        Sqleval.Persist.scrub ~dir:h.Sqleval.Persist.dir ()
      with
      | r -> send_json fd (Wire.ok_scrub ?id (scrub_json r))
      | exception e ->
          Mutex.lock t.m.mmu;
          t.m.errors <- t.m.errors + 1;
          Mutex.unlock t.m.mmu;
          send_json fd (Wire.error_of ?id (classify_error e)))

let handle_backup t ~id ~target fd =
  match t.persist with
  | None ->
      send_json fd
        (Wire.error ?id ~code:"bad_request"
           ~message:"server is running without a durable store" ())
  | Some h -> (
      match Sqleval.Persist.backup h ~target with
      | r -> send_json fd (Wire.ok_backup ?id (backup_json r))
      | exception e ->
          Mutex.lock t.m.mmu;
          t.m.errors <- t.m.errors + 1;
          Mutex.unlock t.m.mmu;
          send_json fd (Wire.error_of ?id (classify_error e)))

let handle_stmt t ~sid ~id ~sql ~strategy fd =
  match Option.map strategy_of_string strategy with
  | Some (Error msg) ->
      send_json fd (Wire.error ?id ~code:"bad_request" ~message:msg ())
  | (None | Some (Ok _)) as validated -> (
      let strategy =
        match validated with
        | Some (Ok (Some _ as st)) -> st
        | _ -> t.cfg.default_strategy
      in
      match Sqlparse.Parser.parse_temporal_stmt sql with
      | exception e ->
          Mutex.lock t.m.mmu;
          t.m.errors <- t.m.errors + 1;
          Mutex.unlock t.m.mmu;
          send_json fd (Wire.error_of ?id (classify_error e))
      | ts ->
          let snap = Atomic.get t.published in
          let is_read = Taupsm.Stratum.read_only snap.snap_cat ts in
          let t0 = Mono_clock.now () in
          let resp =
            if is_read then begin
              match exec_read t ?strategy ts with
              | r ->
                  let dt = Mono_clock.now () -. t0 in
                  Mutex.lock t.m.mmu;
                  t.m.reads <- t.m.reads + 1;
                  Histo.add t.m.read_latency dt;
                  Mutex.unlock t.m.mmu;
                  Wire.ok_result ?id ~seconds:dt r
              | exception e ->
                  Mutex.lock t.m.mmu;
                  t.m.errors <- t.m.errors + 1;
                  Mutex.unlock t.m.mmu;
                  Wire.error_of ?id (classify_error e)
            end
            else begin
              let on_retry () =
                Mutex.lock t.m.mmu;
                t.m.write_retries <- t.m.write_retries + 1;
                Mutex.unlock t.m.mmu
              in
              let strategy_str =
                match strategy with
                | Some Taupsm.Stratum.Max -> Some "max"
                | Some Taupsm.Stratum.Perst -> Some "perst"
                | None -> None
              in
              let rand =
                (* a fresh per-statement stream decorrelated by session
                   id: deterministic under a fixed seed, distinct
                   across sessions *)
                Option.map
                  (fun seed -> Retry.seeded_rand ~seed:(seed + (sid * 7919)))
                  t.cfg.retry_seed
              in
              match
                Commit_lane.submit_retry ?rand t.lane ~session:sid
                  ?strategy:strategy_str ?deadline:t.cfg.stmt_deadline
                  ?max_rows:t.cfg.max_rows ~on_retry sql
              with
              | Ok (Commit_lane.Done r) ->
                  let dt = Mono_clock.now () -. t0 in
                  Mutex.lock t.m.mmu;
                  t.m.writes <- t.m.writes + 1;
                  Histo.add t.m.write_latency dt;
                  Mutex.unlock t.m.mmu;
                  Wire.ok_result ?id ~seconds:dt r
              | Ok (Commit_lane.Failed e) ->
                  Mutex.lock t.m.mmu;
                  t.m.errors <- t.m.errors + 1;
                  Mutex.unlock t.m.mmu;
                  Wire.error_of ?id (classify_error e)
              | Error `Overloaded ->
                  Mutex.lock t.m.mmu;
                  t.m.errors <- t.m.errors + 1;
                  Mutex.unlock t.m.mmu;
                  Wire.error ?id ~code:"overloaded"
                    ~message:"write lane saturated; retry later" ()
              | Error (`Draining | `Dead) ->
                  Wire.error ?id ~code:"draining"
                    ~message:"server is shutting down" ()
            end
          in
          send_json fd resp)

let serve_session t fd =
  let sid = Atomic.fetch_and_add t.session_ctr 1 in
  Mutex.lock t.m.mmu;
  t.m.sessions <- t.m.sessions + 1;
  Mutex.unlock t.m.mmu;
  Mutex.lock t.qmu;
  Hashtbl.replace t.active_fds sid fd;
  Mutex.unlock t.qmu;
  let cleanup () =
    Mutex.lock t.qmu;
    Hashtbl.remove t.active_fds sid;
    Mutex.unlock t.qmu
  in
  Fun.protect ~finally:cleanup (fun () ->
      if send_json fd (Wire.hello ~session:sid ~version:protocol_version) then begin
        let rd = make_reader fd in
        let rec loop () =
          match read_line_ev t rd ~idle:t.cfg.idle_timeout with
          | Eof -> ()
          | Drain ->
              ignore
                (send_json fd
                   (Wire.error ~code:"draining"
                      ~message:"server is shutting down" ()))
          | Idle ->
              Mutex.lock t.m.mmu;
              t.m.idle_closes <- t.m.idle_closes + 1;
              Mutex.unlock t.m.mmu;
              ignore
                (send_json fd
                   (Wire.error ~code:"idle_timeout"
                      ~message:
                        (Printf.sprintf "no request for %.0fs"
                           t.cfg.idle_timeout)
                      ()))
          | Line line when String.trim line = "" -> loop ()
          | Line line -> (
              match Wire.parse_request line with
              | Error msg ->
                  if
                    send_json fd
                      (Wire.error ~code:"bad_request" ~message:msg ())
                  then loop ()
              | Ok (id, Wire.Ping) ->
                  if send_json fd (Wire.ok_pong ?id ()) then loop ()
              | Ok (id, Wire.Stats) ->
                  if send_json fd (Wire.ok_stats ?id (stats_json t)) then
                    loop ()
              | Ok (id, Wire.Scrub) ->
                  if handle_scrub t ~id fd then loop ()
              | Ok (id, Wire.Backup { target }) ->
                  if handle_backup t ~id ~target fd then loop ()
              | Ok (id, Wire.Close) ->
                  ignore (send_json fd (Wire.ok_bye ?id ()))
              | Ok (id, Wire.Stmt { sql; strategy }) ->
                  if handle_stmt t ~sid ~id ~sql ~strategy fd then loop ())
        in
        loop ()
      end)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let pop_conn t =
  Mutex.lock t.qmu;
  let rec wait () =
    if not (Queue.is_empty t.connq) then Some (Queue.pop t.connq)
    else if Atomic.get t.stop then None
    else begin
      Condition.wait t.qcond t.qmu;
      wait ()
    end
  in
  let c = wait () in
  Mutex.unlock t.qmu;
  c

let rec worker_loop t =
  match pop_conn t with
  | None -> ()
  | Some fd ->
      ignore (Atomic.fetch_and_add t.busy 1);
      (try serve_session t fd with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Atomic.fetch_and_add t.busy (-1));
      worker_loop t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(cfg = default_config) ~engine ?persist () =
  (match Sys.os_type with "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore | _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd (max 8 (cfg.workers + cfg.queue_depth));
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let published =
    Atomic.make
      {
        snap_cat = Sqleval.Catalog.publish (Sqleval.Engine.catalog engine);
        snap_now = Sqleval.Engine.now engine;
        snap_serial =
          (match persist with Some h -> Sqleval.Persist.serial h | None -> 0);
      }
  in
  let m =
    {
      mmu = Mutex.create ();
      sessions = 0;
      admission_rejections = 0;
      drained_connections = 0;
      idle_closes = 0;
      reads = 0;
      writes = 0;
      errors = 0;
      write_retries = 0;
      read_latency = Histo.create ();
      write_latency = Histo.create ();
    }
  in
  let t_ref = ref None in
  let lane =
    Commit_lane.create ~cfg:cfg.lane
      ~exec:(fun req ->
        match !t_ref with
        | Some t -> exec_write t req
        | None -> assert false)
      ~sync_wal:(fun () ->
        match persist with Some h -> Sqleval.Persist.sync h | None -> ())
      ~publish:(fun () ->
        match !t_ref with Some t -> publish_snapshot t | None -> ())
      ()
  in
  let t =
    {
      cfg;
      master = engine;
      persist;
      published;
      lane;
      listen_fd;
      bound_port;
      stop = Atomic.make false;
      qmu = Mutex.create ();
      qcond = Condition.create ();
      connq = Queue.create ();
      busy = Atomic.make 0;
      active_fds = Hashtbl.create 16;
      session_ctr = Atomic.make 1;
      m;
      workers = [];
      started = Mono_clock.now ();
    }
  in
  t_ref := Some t;
  t.workers <-
    List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let request_drain t = Atomic.set t.stop true
(* Signal-handler safe: one atomic store.  The accept loop notices
   within its 250 ms tick and performs the actual teardown. *)

(* Admit or reject one fresh connection. *)
let admit t fd =
  Mutex.lock t.qmu;
  let depth = Queue.length t.connq in
  if depth >= t.cfg.queue_depth then begin
    Mutex.unlock t.qmu;
    Mutex.lock t.m.mmu;
    t.m.admission_rejections <- t.m.admission_rejections + 1;
    Mutex.unlock t.m.mmu;
    ignore
      (send_json fd
         (Wire.error ~code:"overloaded"
            ~message:
              (Printf.sprintf "session queue full (%d waiting, %d workers)"
                 depth t.cfg.workers)
            ()));
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    Queue.push fd t.connq;
    Condition.signal t.qcond;
    Mutex.unlock t.qmu
  end

(* Run the accept loop until drain, then tear down in order: stop
   accepting; bounce still-queued connections; wait (bounded) for
   in-flight statements; force-close laggards; join workers; drain the
   write lane; final fsync + detach.  Returns the exit code. *)
let run t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> admit t fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* bounce queued-but-unserved connections and wake every worker *)
  Mutex.lock t.qmu;
  let pending = ref [] in
  Queue.iter (fun fd -> pending := fd :: !pending) t.connq;
  Queue.clear t.connq;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmu;
  List.iter
    (fun fd ->
      Mutex.lock t.m.mmu;
      t.m.drained_connections <- t.m.drained_connections + 1;
      Mutex.unlock t.m.mmu;
      ignore
        (send_json fd
           (Wire.error ~code:"draining" ~message:"server is shutting down" ()));
      try Unix.close fd with Unix.Unix_error _ -> ())
    !pending;
  (* in-flight statements get [drain_deadline] to finish *)
  let give_up = Mono_clock.now () +. t.cfg.drain_deadline in
  while Atomic.get t.busy > 0 && Mono_clock.now () < give_up do
    Unix.sleepf 0.02
  done;
  let forced = Atomic.get t.busy > 0 in
  if forced then begin
    (* past the deadline: sever the sockets; workers notice on their
       next read and exit.  Guard deadlines bound the statements
       themselves. *)
    Mutex.lock t.qmu;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.active_fds;
    Mutex.unlock t.qmu
  end;
  List.iter Domain.join t.workers;
  t.workers <- [];
  (* the lane finishes (group-committing) everything already queued *)
  Commit_lane.drain t.lane;
  (match t.persist with
  | Some h ->
      Sqleval.Persist.sync h;
      Sqleval.Persist.detach h
  | None -> ());
  if forced then 1 else 0

(* Convenience for tests: run in a background thread, return a handle
   the test joins after {!request_drain}. *)
let run_async t =
  let code = ref (-1) in
  let th = Thread.create (fun () -> code := run t) () in
  (th, code)

let wait (th, code) =
  Thread.join th;
  !code
