(* A blocking line-oriented client for the serving protocol.  Used by
   the CLI `client` subcommand, the bench harness and the tests; also a
   worked example of the protocol for other implementations. *)

type t = {
  fd : Unix.file_descr;
  mutable acc : string;
  chunk : Bytes.t;
  mutable session : int;  (* from the hello banner *)
  mutable next_id : int;
}

exception Protocol_error of string

let rec write_all fd s pos len =
  if len > 0 then
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)

(* Read one '\n'-terminated line (blocking). *)
let read_line_exn c =
  let rec go () =
    match String.index_opt c.acc '\n' with
    | Some i ->
        let line = String.sub c.acc 0 i in
        c.acc <- String.sub c.acc (i + 1) (String.length c.acc - i - 1);
        line
    | None -> (
        match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
        | 0 -> raise (Protocol_error "server closed the connection")
        | n ->
            c.acc <- c.acc ^ Bytes.sub_string c.chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let read_json c =
  let line = read_line_exn c in
  match Json.parse line with
  | Ok j -> j
  | Error m -> raise (Protocol_error (Printf.sprintf "bad server JSON: %s" m))

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let c = { fd; acc = ""; chunk = Bytes.create 65536; session = 0; next_id = 1 } in
  (* the first line is either the hello banner or an admission
     rejection ({"error":{"code":"overloaded"}}) *)
  let banner = read_json c in
  (match Json.member "hello" banner with
  | Some _ ->
      c.session <-
        Option.value ~default:0 (Json.member_int banner "session")
  | None -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match Wire.error_code banner with
      | Some code ->
          raise
            (Protocol_error (Printf.sprintf "connection rejected: %s" code))
      | None -> raise (Protocol_error "no hello banner")));
  c

let session c = c.session

(* Send [req] (an object; an "id" is added), return the matching
   response.  The protocol is strictly request/response per session, so
   matching is positional; the id is still checked when echoed. *)
let roundtrip c (fields : (string * Json.t) list) =
  let id = c.next_id in
  c.next_id <- id + 1;
  let line = Json.to_string (Json.Obj (("id", Json.Int id) :: fields)) ^ "\n" in
  write_all c.fd line 0 (String.length line);
  let resp = read_json c in
  (match Json.member_int resp "id" with
  | Some id' when id' <> id ->
      raise
        (Protocol_error (Printf.sprintf "response id %d for request %d" id' id))
  | _ -> ());
  resp

let stmt ?strategy c sql =
  roundtrip c
    (("op", Json.Str "stmt") :: ("sql", Json.Str sql)
    :: (match strategy with Some s -> [ ("strategy", Json.Str s) ] | None -> []))

let ping c = roundtrip c [ ("op", Json.Str "ping") ]
let stats c = roundtrip c [ ("op", Json.Str "stats") ]
let scrub c = roundtrip c [ ("op", Json.Str "scrub") ]

let backup c ~target =
  roundtrip c [ ("op", Json.Str "backup"); ("target", Json.Str target) ]

let close c =
  (try ignore (roundtrip c [ ("op", Json.Str "close") ])
   with Protocol_error _ | Unix.Unix_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Abandon the socket without the close handshake (tests use this to
   model a client vanishing mid-session). *)
let abandon c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Result helpers                                                      *)
(* ------------------------------------------------------------------ *)

let ok = Wire.is_ok
let error_code = Wire.error_code

let affected resp = Json.member_int resp "affected"

let rows resp =
  match Json.member "rows" resp with
  | Some (Json.Obj _ as r) -> (
      match (Json.member "cols" r, Json.member "rows" r) with
      | Some (Json.List cols), Some (Json.List rows) ->
          Some
            ( List.filter_map Json.to_string_opt cols,
              List.map
                (function Json.List vs -> vs | v -> [ v ])
                rows )
      | _ -> None)
  | _ -> None

(* Flatten a rows response to a sorted multiset of rendered rows —
   order-insensitive comparison for equivalence checks. *)
let row_bag resp =
  match rows resp with
  | None -> None
  | Some (_, rows) ->
      Some (List.sort compare (List.map (fun r -> Json.to_string (Json.List r)) rows))
