(* A minimal JSON value type, renderer and recursive-descent parser for
   the wire protocol (the toolchain has no JSON package; the protocol
   needs only scalars, arrays and objects).  Integers are kept distinct
   from floats — SQL integer values must round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* shortest representation that round-trips *)
        let s = Printf.sprintf "%.17g" f in
        let s' = Printf.sprintf "%.15g" f in
        Buffer.add_string buf (if float_of_string s' = f then s' else s)
      else Buffer.add_string buf "null"
  | Str s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          render_into buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at %d" m st.pos))) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st "expected '%c'" c

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st "invalid literal"

let utf8_of_code buf u =
  (* BMP only; \u escapes outside it come in as surrogate pairs, which we
     pass through as two 3-byte sequences — lossless for round-trips. *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
        if st.pos >= String.length st.s then fail st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail st "short \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let u =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            utf8_of_code buf u
        | _ -> fail st "bad escape '\\%c'" e);
        go ()
      end
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  if
    String.contains text '.' || String.contains text 'e'
    || String.contains text 'E'
  then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* integer overflow: keep the magnitude as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' ->
      st.pos <- st.pos + 1;
      Str (parse_string_body st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let member () =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (kv :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected '%c'" c

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing bytes after value"
      else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let member_string j k = Option.bind (member k j) to_string_opt
let member_int j k = Option.bind (member k j) to_int_opt
let member_float j k = Option.bind (member k j) to_float_opt
let member_bool j k = Option.bind (member k j) to_bool_opt
