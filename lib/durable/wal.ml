(* Append-only WAL file with CRC-framed records.  Every durable byte
   goes through [Io], the injectable syscall layer the storage-fault
   harness (Fault.arm_io) misbehaves at and the crash-point harness
   (Fault.arm_crash) tears writes at. *)

type sync_policy = Always | Batch of int | Off

let magic = "TPSMWAL2"
let header_len = String.length magic

(* Sanity cap on a single record: a frame whose length field exceeds
   this is treated as corruption rather than an allocation request.
   Generous — the largest real records are snapshots of DS3-size
   tables, well under a few MiB. *)
let max_record = 1 lsl 26

type t = {
  fd : Unix.file_descr;
  path : string;
  policy : sync_policy;
  obs : Trace.t;
  mutable offset : int;
  mutable pending_commits : int;  (* commits since the last fsync *)
  mutable dead : bool;
}

let write_durable fd ~site s = Io.write fd ~site s

let guarded t site f =
  if t.dead then ()
  else
    try f () with
    | Fault.Crash _ as e ->
        t.dead <- true;
        raise e
    | Unix.Unix_error (err, fn, _) ->
        t.dead <- true;
        Taupsm_error.raise_error Taupsm_error.Durability "%s failed: %s in %s"
          site (Unix.error_message err) fn

let fsync_now ?(site = Fault.Wal_sync) t =
  Io.fsync t.fd ~site;
  t.pending_commits <- 0;
  Trace.count t.obs "wal.fsyncs" 1

let create ?(policy = Batch 16) ?(obs = Trace.null) path =
  let fd =
    Io.openfile ~site:Fault.Rotation path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  let t = { fd; path; policy; obs; offset = 0; pending_commits = 0; dead = false } in
  guarded t "wal create" (fun () ->
      Io.write t.fd ~site:Fault.Rotation magic;
      t.offset <- header_len;
      fsync_now ~site:Fault.Rotation t);
  t

let reopen ?(policy = Batch 16) ?(obs = Trace.null) path ~good_offset =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 in
  let t = { fd; path; policy; obs; offset = good_offset; pending_commits = 0; dead = false } in
  guarded t "wal reopen" (fun () ->
      Unix.ftruncate t.fd good_offset;
      ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
      fsync_now t);
  t

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (Crc32.digest payload));
  Buffer.add_string b payload;
  Buffer.contents b

(* A failed append is NOT fatal to the log.  ENOSPC or EIO mid-append is
   the canonical recoverable storage fault: the record (possibly a
   partially-persisted prefix of it) is cut back off the file so the log
   ends exactly at the last good record, and a typed [Durability] error
   aborts the statement while the WAL stays live for the next one.  Only
   if the heal-truncate itself fails — the filesystem is refusing even
   metadata operations — does the log die. *)
let append t payload =
  if t.dead then ()
  else begin
    let r = frame payload in
    try
      Io.write t.fd ~site:Fault.Wal_append r;
      t.offset <- t.offset + String.length r;
      if Trace.enabled t.obs then begin
        Trace.count t.obs "wal.records" 1;
        Trace.count t.obs "wal.bytes" (String.length r)
      end
    with
    | Fault.Crash _ as e ->
        t.dead <- true;
        raise e
    | Unix.Unix_error (err, fn, _) -> (
        match
          Unix.ftruncate t.fd t.offset;
          ignore (Unix.lseek t.fd t.offset Unix.SEEK_SET)
        with
        | () ->
            Trace.count t.obs "wal.append_failures" 1;
            Taupsm_error.raise_error Taupsm_error.Durability
              "wal append failed: %s in %s (record removed, log intact)"
              (Unix.error_message err) fn
        | exception Unix.Unix_error (err2, fn2, _) ->
            t.dead <- true;
            Taupsm_error.raise_error Taupsm_error.Durability
              "wal append failed: %s in %s; heal truncate failed: %s in %s (log dead)"
              (Unix.error_message err) fn (Unix.error_message err2) fn2)
  end

(* Cut the log back to [off] — the group-abort primitive: a statement
   whose events are already appended but whose commit marker failed (or
   was never written) erases itself so recovery can never see a
   half-group.  Fatal if the filesystem refuses. *)
let truncate_to t off =
  if not t.dead && off <> t.offset then
    guarded t "wal truncate" (fun () ->
        Unix.ftruncate t.fd off;
        ignore (Unix.lseek t.fd off Unix.SEEK_SET);
        t.offset <- off;
        Trace.count t.obs "wal.truncates" 1)

let commit_done t =
  guarded t "wal commit" (fun () ->
      Trace.count t.obs "wal.commits" 1;
      match t.policy with
      | Always -> fsync_now t
      | Off -> ()
      | Batch n ->
          t.pending_commits <- t.pending_commits + 1;
          if t.pending_commits >= max 1 n then fsync_now t)

(* Explicit fsync for group commit: the serving layer's writer lane runs
   with policy [Off] inside a batch and calls this once per batch, so
   one fsync amortizes over every commit in it.  No-op on a dead WAL. *)
let sync t = guarded t "wal sync" (fun () -> fsync_now t)

let offset t = t.offset
let is_dead t = t.dead

let close t =
  if not t.dead then begin
    t.dead <- true;
    (try if t.policy <> Off then Unix.fsync t.fd with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Recovery scan                                                       *)
(* ------------------------------------------------------------------ *)

type stop = Eof | Torn_tail | Bad_crc | Bad_record | Bad_magic | Missing | Io_error

let stop_string = function
  | Eof -> "eof"
  | Torn_tail -> "torn_tail"
  | Bad_crc -> "bad_crc"
  | Bad_record -> "bad_record"
  | Bad_magic -> "bad_magic"
  | Missing -> "missing"
  | Io_error -> "io_error"

type scan = { good_offset : int; records : int; bytes : int; stop : stop }

let scan path ~f =
  if not (Sys.file_exists path) then
    { good_offset = header_len; records = 0; bytes = 0; stop = Missing }
  else begin
    match Io.read_file ~site:Fault.Recovery_read path with
    | exception Unix.Unix_error _ ->
        (* the device refused the read outright: report loudly rather
           than pass off an empty log as a clean one *)
        { good_offset = header_len; records = 0; bytes = 0; stop = Io_error }
    | s ->
        let len = String.length s in
        if len < header_len || String.sub s 0 header_len <> magic then
          { good_offset = header_len; records = 0; bytes = len; stop = Bad_magic }
        else begin
          let pos = ref header_len in
          let good = ref header_len in
          let records = ref 0 in
          let stop = ref Eof in
          (try
             while !pos < len do
               if !pos + 8 > len then begin
                 stop := Torn_tail;
                 raise Exit
               end;
               let rlen = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
               let crc = Int32.to_int (String.get_int32_le s (!pos + 4)) land 0xFFFFFFFF in
               if rlen > max_record then begin
                 stop := Bad_crc;
                 raise Exit
               end;
               if !pos + 8 + rlen > len then begin
                 stop := Torn_tail;
                 raise Exit
               end;
               let payload = String.sub s (!pos + 8) rlen in
               if Crc32.digest payload <> crc then begin
                 stop := Bad_crc;
                 raise Exit
               end;
               let record_end = !pos + 8 + rlen in
               (match f ~off:record_end payload with
               | () -> ()
               | exception _ ->
                   stop := Bad_record;
                   raise Exit);
               pos := record_end;
               good := !pos;
               incr records
             done
           with Exit -> ());
          { good_offset = !good; records = !records; bytes = len; stop = !stop }
        end
  end
