(* Little-endian binary codec for WAL record payloads and snapshot
   bodies.  See codec.mli for the wire grammar; the golden-vector tests
   in test_durable pin the exact byte layout, so any change here is a
   format break and needs a new magic at the file layer. *)

open Sqldb

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* Primitive writers (into a Buffer)                                   *)
(* ------------------------------------------------------------------ *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let w_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let w_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

(* ------------------------------------------------------------------ *)
(* Primitive readers (cursor over an immutable payload)                *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let cursor s = { s; pos = 0 }

let need c n =
  if n < 0 || c.pos + n > String.length c.s then
    corrupt "truncated payload: need %d byte(s) at offset %d of %d" n c.pos
      (String.length c.s)

let r_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let r_i64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let r_f64 c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c =
  let n = r_u32 c in
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

(* Read [n] elements with [f]; each element read re-checks bounds, so a
   corrupt (huge) count fails fast instead of pre-allocating. *)
let r_list c n f =
  let rec go acc i = if i = n then List.rev acc else go (f c :: acc) (i + 1) in
  go [] 0

let at_end c =
  if c.pos <> String.length c.s then
    corrupt "trailing garbage: %d byte(s) after payload"
      (String.length c.s - c.pos)

(* ------------------------------------------------------------------ *)
(* Values, rows, schemas                                               *)
(* ------------------------------------------------------------------ *)

let w_value b = function
  | Value.Null -> w_u8 b 0
  | Value.Int n ->
      w_u8 b 1;
      w_i64 b n
  | Value.Float f ->
      w_u8 b 2;
      w_f64 b f
  | Value.Str s ->
      w_u8 b 3;
      w_str b s
  | Value.Bool v ->
      w_u8 b 4;
      w_u8 b (if v then 1 else 0)
  | Value.Date d ->
      w_u8 b 5;
      w_i64 b d

let r_value c =
  match r_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (r_i64 c)
  | 2 -> Value.Float (r_f64 c)
  | 3 -> Value.Str (r_str c)
  | 4 -> Value.Bool (r_u8 c <> 0)
  | 5 -> Value.Date (r_i64 c)
  | t -> corrupt "unknown value tag %d" t

let w_row b (r : Value.t array) =
  w_u32 b (Array.length r);
  Array.iter (w_value b) r

let r_row c =
  let n = r_u32 c in
  Array.of_list (r_list c n r_value)

let ty_tag = function
  | Value.Tint -> 0
  | Value.Tfloat -> 1
  | Value.Tstring -> 2
  | Value.Tbool -> 3
  | Value.Tdate -> 4

let tag_ty = function
  | 0 -> Value.Tint
  | 1 -> Value.Tfloat
  | 2 -> Value.Tstring
  | 3 -> Value.Tbool
  | 4 -> Value.Tdate
  | t -> corrupt "unknown type tag %d" t

let w_name_list b names =
  w_u32 b (List.length names);
  List.iter (w_str b) names

let r_name_list c =
  let n = r_u32 c in
  r_list c n r_str

let w_constraint b = function
  | Schema.Temporal_pk cols ->
      w_u8 b 1;
      w_name_list b cols
  | Schema.Temporal_fk { fk_cols; ref_table; ref_cols } ->
      w_u8 b 2;
      w_name_list b fk_cols;
      w_str b ref_table;
      w_name_list b ref_cols

let r_constraint c =
  match r_u8 c with
  | 1 -> Schema.Temporal_pk (r_name_list c)
  | 2 ->
      let fk_cols = r_name_list c in
      let ref_table = r_str c in
      let ref_cols = r_name_list c in
      Schema.Temporal_fk { fk_cols; ref_table; ref_cols }
  | t -> corrupt "unknown constraint tag %d" t

(* The schema record is serialised field-for-field (not re-derived via
   Schema.make, which appends timestamp columns): decode must rebuild
   the exact column list the table carried. *)
let w_schema b (s : Schema.t) =
  w_str b s.Schema.name;
  w_u32 b (List.length s.Schema.columns);
  List.iter
    (fun col ->
      w_str b col.Schema.col_name;
      w_u8 b (ty_tag col.Schema.col_ty))
    s.Schema.columns;
  w_u8 b (if s.Schema.temporal then 1 else 0);
  w_u8 b (if s.Schema.transaction then 1 else 0);
  w_u32 b (List.length s.Schema.constraints);
  List.iter (w_constraint b) s.Schema.constraints

let r_schema c =
  let name = r_str c in
  let ncols = r_u32 c in
  let columns =
    r_list c ncols (fun c ->
        let col_name = r_str c in
        let col_ty = tag_ty (r_u8 c) in
        { Schema.col_name; col_ty })
  in
  let temporal = r_u8 c <> 0 in
  let transaction = r_u8 c <> 0 in
  let nconstraints = r_u32 c in
  let constraints = r_list c nconstraints r_constraint in
  { Schema.name; columns; temporal; transaction; constraints }

(* ------------------------------------------------------------------ *)
(* WAL records                                                         *)
(* ------------------------------------------------------------------ *)

type record =
  | Revent of Wal_hook.event
  | Rcommit of int
  | Raux of string * string

let encode_event ev =
  let b = Buffer.create 64 in
  (match ev with
  | Wal_hook.Row_insert (t, row) ->
      w_u8 b 1;
      w_str b t;
      w_row b row
  | Wal_hook.Rows_delete (t, pos) ->
      w_u8 b 2;
      w_str b t;
      w_u32 b (Array.length pos);
      Array.iter (w_u32 b) pos
  | Wal_hook.Rows_update (t, pairs) ->
      w_u8 b 3;
      w_str b t;
      w_u32 b (Array.length pairs);
      Array.iter
        (fun (p, row) ->
          w_u32 b p;
          w_row b row)
        pairs
  | Wal_hook.Table_clear t ->
      w_u8 b 4;
      w_str b t
  | Wal_hook.Table_create (sch, temp, rows) ->
      w_u8 b 5;
      w_schema b sch;
      w_u8 b (if temp then 1 else 0);
      w_u32 b (List.length rows);
      List.iter (w_row b) rows
  | Wal_hook.Table_drop t ->
      w_u8 b 6;
      w_str b t
  | Wal_hook.Temp_tables_drop -> w_u8 b 7
  | Wal_hook.Catalog_ddl sql ->
      w_u8 b 8;
      w_str b sql);
  Buffer.contents b

let encode_commit ~serial =
  let b = Buffer.create 9 in
  w_u8 b 9;
  w_i64 b serial;
  Buffer.contents b

(* Auxiliary engine state (tag 10): an opaque named blob riding in the
   WAL ahead of a commit marker.  Advisory by design — recovery hands it
   to the engine via [on_aux] but the committed-prefix guarantee is
   about database state only, so an unknown name is skipped, never an
   error. *)
let encode_aux ~name ~blob =
  let b = Buffer.create (String.length name + String.length blob + 9) in
  w_u8 b 10;
  w_str b name;
  w_str b blob;
  Buffer.contents b

let decode_record payload =
  let c = cursor payload in
  let r =
    match r_u8 c with
    | 1 ->
        let t = r_str c in
        Revent (Wal_hook.Row_insert (t, r_row c))
    | 2 ->
        let t = r_str c in
        let n = r_u32 c in
        Revent (Wal_hook.Rows_delete (t, Array.of_list (r_list c n r_u32)))
    | 3 ->
        let t = r_str c in
        let n = r_u32 c in
        let pairs =
          r_list c n (fun c ->
              let p = r_u32 c in
              (p, r_row c))
        in
        Revent (Wal_hook.Rows_update (t, Array.of_list pairs))
    | 4 -> Revent (Wal_hook.Table_clear (r_str c))
    | 5 ->
        let sch = r_schema c in
        let temp = r_u8 c <> 0 in
        let n = r_u32 c in
        Revent (Wal_hook.Table_create (sch, temp, r_list c n r_row))
    | 6 -> Revent (Wal_hook.Table_drop (r_str c))
    | 7 -> Revent Wal_hook.Temp_tables_drop
    | 8 -> Revent (Wal_hook.Catalog_ddl (r_str c))
    | 9 -> Rcommit (r_i64 c)
    | 10 ->
        let name = r_str c in
        Raux (name, r_str c)
    | t -> corrupt "unknown record tag %d" t
  in
  at_end c;
  r

(* ------------------------------------------------------------------ *)
(* Snapshot bodies                                                     *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  serial : int;
  now : int;
  ddl : string list;
  base : (Schema.t * Value.t array list) list;
  temp : (Schema.t * Value.t array list) list;
  aux : (string * string) list;
      (* named opaque blobs (e.g. the strategy-calibration state);
         encoded only when non-empty, so aux-free snapshots keep the
         exact byte layout the golden vectors pin *)
}

let w_tables b tables =
  w_u32 b (List.length tables);
  List.iter
    (fun (sch, rows) ->
      w_schema b sch;
      w_u32 b (List.length rows);
      List.iter (w_row b) rows)
    tables

let r_tables c =
  let n = r_u32 c in
  r_list c n (fun c ->
      let sch = r_schema c in
      let nrows = r_u32 c in
      (sch, r_list c nrows r_row))

let encode_snapshot s =
  let b = Buffer.create 4096 in
  w_i64 b s.serial;
  w_i64 b s.now;
  w_u32 b (List.length s.ddl);
  List.iter (w_str b) s.ddl;
  w_tables b s.base;
  w_tables b s.temp;
  if s.aux <> [] then begin
    w_u32 b (List.length s.aux);
    List.iter
      (fun (name, blob) ->
        w_str b name;
        w_str b blob)
      s.aux
  end;
  Buffer.contents b

let decode_snapshot payload =
  let c = cursor payload in
  let serial = r_i64 c in
  let now = r_i64 c in
  let nddl = r_u32 c in
  let ddl = r_list c nddl r_str in
  let base = r_tables c in
  let temp = r_tables c in
  (* The aux section is a tail extension: absent in pre-aux snapshots
     (and in any snapshot with nothing to carry), so only read it when
     bytes remain. *)
  let aux =
    if c.pos = String.length c.s then []
    else begin
      let n = r_u32 c in
      r_list c n (fun c ->
          let name = r_str c in
          (name, r_str c))
    end
  in
  at_end c;
  { serial; now; ddl; base; temp; aux }
