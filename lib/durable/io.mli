(** Injectable syscall layer for the durable stratum.

    All durable-layer file I/O — WAL appends and fsyncs, snapshot
    tmp+rename writes, rotation, recovery reads, backup copies — goes
    through this module so that {!Fault.arm_io} can make exactly one
    syscall misbehave (ENOSPC, EIO, short write, dropped fsync, flipped
    bit) and {!Fault.arm_crash}'s byte budget can tear any write.

    Injected failures raise [Unix.Unix_error] exactly as the real
    syscall would, so callers cannot distinguish injected faults from
    genuine ones and their degradation policy is tested honestly. *)

val write : Unix.file_descr -> site:Fault.io_site -> string -> unit
(** Write the whole string, under the storage-fault point for [site]
    and the crash byte budget.  An injected short write persists a
    deterministic prefix before raising; an injected bit flip persists
    the whole buffer with one bit wrong and returns success. *)

val fsync : Unix.file_descr -> site:Fault.io_site -> unit
(** Fsync, under the fault point: [Io_fsync_drop] silently skips the
    sync (recorded via {!Fault.fsync_dropped}); EIO/ENOSPC raise. *)

val rename : site:Fault.io_site -> string -> string -> unit
val openfile :
  site:Fault.io_site -> string -> Unix.open_flag list -> int -> Unix.file_descr

val read_file : site:Fault.io_site -> string -> string
(** Whole-file read on the recovery/scrub path.  An injected EIO models
    an unreadable sector; an injected bit flip corrupts the returned
    bytes so downstream CRC validation must catch it. *)

val copy_file : ?len:int -> site:Fault.io_site -> string -> string -> int
(** [copy_file ?len ~site src dst] copies [src] (truncated to [len]
    bytes when given) to [dst] via tmp + fsync + rename, so a crash
    mid-copy never leaves a partial file under [dst] and re-running is
    always safe.  Returns the number of bytes copied. *)
