(* The durable store: snapshot + WAL pairs in a directory, the
   Wal_hook implementation that feeds them, and the recovery path.
   See store.mli for the protocol and guarantees. *)

open Sqldb

let snap_magic = "TPSMSNP2"
let snap_name id = Printf.sprintf "snap-%08d.bin" id
let wal_name id = Printf.sprintf "wal-%08d.log" id

type t = {
  dir : string;
  policy : Wal.sync_policy;
  snapshot_every : int option;
  obs : Trace.t;
  db : Database.t;
  now : unit -> int;
  ddl : unit -> string list;
  mutable wal : Wal.t;
  mutable snap_id : int;
  mutable serial : int;
  mutable commits_since_snap : int;
  mutable buffer : string list;  (* encoded event payloads, newest first *)
  mutable dead : bool;
}

type report = {
  snapshot_id : int;
  commits_replayed : int;
  records_scanned : int;
  bytes_scanned : int;
  stop : string;
  last_serial : int;
  snapshot_now : int;
  wal_good_offset : int;
  wal_committed_offset : int;
  seconds : float;
}

(* ------------------------------------------------------------------ *)
(* Directory plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Make the rename of a snapshot itself durable.  Some filesystems
   refuse fsync on a directory fd; that only weakens real-crash
   durability, never the simulated-crash model, so errors are ignored. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* Snapshot generations present in [dir], newest first. *)
let snapshot_ids dir =
  (if Sys.file_exists dir then Sys.readdir dir else [||])
  |> Array.to_list
  |> List.filter_map (fun f ->
         Scanf.sscanf_opt f "snap-%d.bin%!" (fun i -> i))
  |> List.sort (fun a b -> compare b a)

let exists dir = snapshot_ids dir <> []

(* ------------------------------------------------------------------ *)
(* Snapshot write / read                                               *)
(* ------------------------------------------------------------------ *)

let dump_tables tables =
  List.map (fun t -> (Table.schema t, Table.to_list t)) tables

(* Write snapshot [id] atomically: tmp file, fsync, rename, dir fsync.
   A crash at any point leaves either no snap-[id] (older generations
   still recoverable) or a complete one. *)
let write_snapshot ~dir ~obs ~id ~serial ~now ~ddl ~db =
  let body =
    Codec.encode_snapshot
      {
        Codec.serial;
        now;
        ddl;
        base = dump_tables (Database.base_tables db);
        temp = dump_tables (Database.temp_tables db);
      }
  in
  let final = Filename.concat dir (snap_name id) in
  let tmp = final ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  (try
     Wal.write_durable fd
       ~site:("snapshot write " ^ snap_name id)
       (snap_magic ^ Wal.frame body);
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.rename tmp final;
  fsync_dir dir;
  Trace.count obs "wal.snapshots" 1;
  Trace.count obs "wal.snapshot_bytes" (String.length body)

(* Read and validate snapshot [id]; None when missing, torn or corrupt
   (recovery then falls back to the previous generation). *)
let load_snapshot ~dir ~id =
  let path = Filename.concat dir (snap_name id) in
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error _ -> None
  | s -> (
      let m = String.length snap_magic in
      if String.length s < m + 8 || String.sub s 0 m <> snap_magic then None
      else
        let blen = Int32.to_int (String.get_int32_le s m) land 0xFFFFFFFF in
        let crc = Int32.to_int (String.get_int32_le s (m + 4)) land 0xFFFFFFFF in
        if m + 8 + blen <> String.length s then None
        else
          let body = String.sub s (m + 8) blen in
          if Crc32.digest body <> crc then None
          else match Codec.decode_snapshot body with
            | snap -> Some snap
            | exception Codec.Corrupt _ -> None)

(* ------------------------------------------------------------------ *)
(* The durability hook                                                 *)
(* ------------------------------------------------------------------ *)

(* Encode at emit time: the row arrays inside events alias live table
   storage, which later statements mutate in place.  Taking the bytes
   now makes the buffered event immutable for free. *)
let emit st ev =
  if not st.dead then st.buffer <- Codec.encode_event ev :: st.buffer

let abort st = st.buffer <- []

(* Savepoints over the (newest-first) buffer: the mark is the event
   count at scope entry; rollback drops everything emitted since. *)
let buffer_savepoint st = List.length st.buffer

let buffer_rollback_to st mark =
  let rec drop l k = if k <= 0 then l else
    match l with [] -> [] | _ :: tl -> drop tl (k - 1)
  in
  let len = List.length st.buffer in
  if len > mark then st.buffer <- drop st.buffer (len - mark)

let rec commit st =
  if not st.dead then begin
    let evs = List.rev st.buffer in
    st.buffer <- [];
    if evs <> [] then begin
      (match
         st.serial <- st.serial + 1;
         List.iter (Wal.append st.wal) evs;
         Wal.append st.wal (Codec.encode_commit ~serial:st.serial);
         Wal.commit_done st.wal
       with
      | () -> ()
      | exception e ->
          st.dead <- true;
          raise e);
      st.commits_since_snap <- st.commits_since_snap + 1;
      match st.snapshot_every with
      | Some n when st.commits_since_snap >= max 1 n -> rotate st
      | _ -> ()
    end
  end

(* Rotate to generation [snap_id + 1]: close the old WAL (it ends on
   the commit just written and stays on disk as a fallback), write the
   new snapshot, open the new WAL.  A crash inside here is safe at
   every point — either the old pair or the new pair is recoverable. *)
and rotate st =
  match
    Wal.close st.wal;
    let id = st.snap_id + 1 in
    write_snapshot ~dir:st.dir ~obs:st.obs ~id ~serial:st.serial
      ~now:(st.now ()) ~ddl:(st.ddl ()) ~db:st.db;
    let wal =
      Wal.create ~policy:st.policy ~obs:st.obs
        (Filename.concat st.dir (wal_name id))
    in
    st.wal <- wal;
    st.snap_id <- id;
    st.commits_since_snap <- 0
  with
  | () -> ()
  | exception e ->
      st.dead <- true;
      raise e

let hook st =
  {
    Wal_hook.emit = emit st;
    commit = (fun () -> commit st);
    abort = (fun () -> abort st);
    savepoint = (fun () -> buffer_savepoint st);
    rollback_to = buffer_rollback_to st;
  }

(* ------------------------------------------------------------------ *)
(* Attach / recover / resume                                           *)
(* ------------------------------------------------------------------ *)

let init ?(policy = Wal.Batch 16) ?snapshot_every ?(obs = Trace.null) ~dir ~db
    ~now ~ddl () =
  mkdir_p dir;
  let id = match snapshot_ids dir with [] -> 0 | i :: _ -> i + 1 in
  write_snapshot ~dir ~obs ~id ~serial:0 ~now:(now ()) ~ddl:(ddl ()) ~db;
  let wal = Wal.create ~policy ~obs (Filename.concat dir (wal_name id)) in
  fsync_dir dir;
  let st =
    {
      dir;
      policy;
      snapshot_every;
      obs;
      db;
      now;
      ddl;
      wal;
      snap_id = id;
      serial = 0;
      commits_since_snap = 0;
      buffer = [];
      dead = false;
    }
  in
  Database.set_wal db (Some (hook st));
  st

(* Apply one replayed event to the recovering database.  Positional
   delete/update records replay against the same row numbering the
   original run saw, so no predicate re-evaluation is needed (or
   possible — predicates are long gone). *)
let apply_event db ~on_ddl ev =
  match ev with
  | Wal_hook.Row_insert (tname, row) ->
      Table.insert (Database.find_table_exn db tname) row
  | Wal_hook.Rows_delete (tname, positions) ->
      let t = Database.find_table_exn db tname in
      let doomed = Hashtbl.create (Array.length positions) in
      Array.iter (fun p -> Hashtbl.replace doomed p ()) positions;
      let i = ref (-1) in
      ignore
        (Table.delete_where
           (fun _ ->
             incr i;
             Hashtbl.mem doomed !i)
           t)
  | Wal_hook.Rows_update (tname, pairs) ->
      let t = Database.find_table_exn db tname in
      let repl = Hashtbl.create (Array.length pairs) in
      Array.iter (fun (p, row) -> Hashtbl.replace repl p row) pairs;
      let i = ref (-1) in
      ignore
        (Table.update_where
           (fun _ ->
             incr i;
             Hashtbl.mem repl !i)
           (fun _ -> Hashtbl.find repl !i)
           t)
  | Wal_hook.Table_clear tname -> Table.clear (Database.find_table_exn db tname)
  | Wal_hook.Table_create (sch, temp, rows) ->
      let t = Table.of_rows sch rows in
      if temp then Database.add_temp_table db t else Database.add_table db t
  | Wal_hook.Table_drop tname -> Database.drop_table db tname
  | Wal_hook.Temp_tables_drop -> Database.drop_temp_tables db
  | Wal_hook.Catalog_ddl sql -> on_ddl sql

let recover ?(obs = Trace.null) ~dir ~db ~on_ddl ~on_now () =
  let t0 = Mono_clock.now () in
  Trace.with_span obs "recover" (fun () ->
      let ids = snapshot_ids dir in
      if ids = [] then
        Taupsm_error.raise_error Taupsm_error.Durability
          "no durable store in %s" dir;
      (* newest intact snapshot, falling back generation by generation *)
      let rec pick = function
        | [] ->
            Taupsm_error.raise_error Taupsm_error.Durability
              "no intact snapshot in %s (%d generation(s), all corrupt)" dir
              (List.length ids)
        | id :: rest -> (
            match load_snapshot ~dir ~id with
            | Some snap -> (id, snap)
            | None ->
                Trace.count obs "recover.snapshots_skipped" 1;
                pick rest)
      in
      let id, snap = pick ids in
      Trace.with_span obs "recover.load_snapshot" (fun () ->
          List.iter
            (fun (sch, rows) -> Database.add_table db (Table.of_rows sch rows))
            snap.Codec.base;
          List.iter
            (fun (sch, rows) ->
              Database.add_temp_table db (Table.of_rows sch rows))
            snap.Codec.temp;
          List.iter on_ddl snap.Codec.ddl;
          on_now snap.Codec.now);
      (* Replay: buffer each record group, apply only on its intact
         commit marker.  An uncommitted suffix — torn tail, corrupt
         record, or simply no marker yet — is never applied, which is
         the whole committed-prefix guarantee.  [committed] tracks the
         offset just past the last intact commit marker: that — not
         the last intact record — is where {!resume} must truncate, or
         intact-but-uncommitted event records surviving a torn tail
         would be adopted by the next statement's commit marker. *)
      let pending = ref [] in
      let commits = ref 0 in
      let serial = ref snap.Codec.serial in
      let committed = ref Wal.header_len in
      let fatal = ref None in
      let scan =
        Trace.with_span obs "recover.replay" (fun () ->
            Wal.scan
              (Filename.concat dir (wal_name id))
              ~f:(fun ~off payload ->
                match Codec.decode_record payload with
                | Codec.Revent ev -> pending := ev :: !pending
                | Codec.Rcommit s ->
                    (* The whole group decoded (every event record's
                       payload parsed before its marker was reached);
                       an apply failure here is a semantically bad but
                       CRC-valid record and must fail recovery loudly:
                       earlier events of the group are already in, so
                       silently stopping would hand back a database
                       with a partially applied statement. *)
                    (match List.iter (apply_event db ~on_ddl) (List.rev !pending)
                     with
                    | () -> ()
                    | exception e ->
                        fatal := Some (s, e);
                        raise e);
                    pending := [];
                    incr commits;
                    serial := s;
                    committed := off))
      in
      (match !fatal with
      | Some (s, e) ->
          Taupsm_error.raise_error Taupsm_error.Durability
            "recovery failed applying committed statement %d — WAL record \
             is CRC-valid but semantically inconsistent (%s)"
            s (Printexc.to_string e)
      | None -> ());
      let seconds = Mono_clock.now () -. t0 in
      Trace.count obs "recover.commits_replayed" !commits;
      Trace.count obs "recover.records" scan.Wal.records;
      Trace.count obs "recover.bytes" scan.Wal.bytes;
      {
        snapshot_id = id;
        commits_replayed = !commits;
        records_scanned = scan.Wal.records;
        bytes_scanned = scan.Wal.bytes;
        stop = Wal.stop_string scan.Wal.stop;
        last_serial = !serial;
        snapshot_now = snap.Codec.now;
        wal_good_offset = scan.Wal.good_offset;
        wal_committed_offset = !committed;
        seconds;
      })

let resume ?(policy = Wal.Batch 16) ?snapshot_every ?(obs = Trace.null) ~dir
    ~db ~now ~ddl (r : report) =
  let path = Filename.concat dir (wal_name r.snapshot_id) in
  let wal =
    (* Truncate to the last intact COMMIT marker, not the last intact
       record: a crash mid-statement leaves that statement's event
       records intact ahead of the marker, and keeping them would let
       the next commit marker adopt a statement that never committed. *)
    if Sys.file_exists path && r.stop <> Wal.stop_string Wal.Bad_magic then
      Wal.reopen ~policy ~obs path ~good_offset:r.wal_committed_offset
    else Wal.create ~policy ~obs path
  in
  let st =
    {
      dir;
      policy;
      snapshot_every;
      obs;
      db;
      now;
      ddl;
      wal;
      snap_id = r.snapshot_id;
      serial = r.last_serial;
      commits_since_snap = r.commits_replayed;
      buffer = [];
      dead = false;
    }
  in
  Database.set_wal db (Some (hook st));
  st

let snapshot st = if not st.dead then rotate st

let detach st =
  if not st.dead then begin
    Database.set_wal st.db None;
    Wal.close st.wal;
    st.dead <- true
  end

(* Group-commit hook: force the WAL to disk now.  A store attached with
   policy [Off] defers every per-commit fsync to explicit calls here —
   the serving layer's writer lane executes a batch of statements, syncs
   once, and only then acks every session in the batch. *)
let sync st = if not st.dead then Wal.sync st.wal

let serial st = st.serial
let is_dead st = st.dead
