(* The durable store: snapshot + WAL pairs in a directory, the
   Wal_hook implementation that feeds them, and the recovery path.
   See store.mli for the protocol and guarantees. *)

open Sqldb

let snap_magic = "TPSMSNP2"
let snap_name id = Printf.sprintf "snap-%08d.bin" id
let wal_name id = Printf.sprintf "wal-%08d.log" id

type t = {
  dir : string;
  policy : Wal.sync_policy;
  snapshot_every : int option;
  obs : Trace.t;
  db : Database.t;
  now : unit -> int;
  ddl : unit -> string list;
  aux : unit -> (string * string) list;
      (* full dump of auxiliary engine state, polled at snapshot time
         (and by {!flush_aux}) like [now] and [ddl] *)
  aux_dirty : unit -> (string * string) list;
      (* drain of aux entries changed since the last drain; appended as
         tag-10 records inside the next commit group *)
  mutable wal : Wal.t;
  mutable snap_id : int;
  mutable serial : int;
  mutable commits_since_snap : int;
  mutable buffer : string list;  (* encoded event payloads, newest first *)
  mutable dead : bool;
  mutable degraded : bool;  (* survived a storage fault; data still safe *)
  (* (snap_id, serial, wal committed offset) as of the last fully
     appended commit group — read by hot backup from another domain, so
     the triple must change atomically. *)
  last_commit : (int * int * int) Atomic.t;
}

type report = {
  snapshot_id : int;
  wal_generation : int;
      (* generation whose WAL is the live log after replay; greater
         than [snapshot_id] when recovery chained across rotations *)
  snapshots_skipped : int;
  commits_replayed : int;
  records_scanned : int;
  bytes_scanned : int;
  stop : string;
  last_serial : int;
  snapshot_now : int;
  wal_good_offset : int;
  wal_committed_offset : int;
  seconds : float;
}

(* ------------------------------------------------------------------ *)
(* Directory plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Make the rename of a snapshot itself durable.  Some filesystems
   refuse fsync on a directory fd; that only weakens real-crash
   durability, never the simulated-crash model, so errors are ignored. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* Snapshot generations present in [dir], newest first. *)
let snapshot_ids dir =
  (if Sys.file_exists dir then Sys.readdir dir else [||])
  |> Array.to_list
  |> List.filter_map (fun f ->
         Scanf.sscanf_opt f "snap-%d.bin%!" (fun i -> i))
  |> List.sort (fun a b -> compare b a)

let exists dir = snapshot_ids dir <> []

(* Remove stale [*.tmp] files left by a crash between tmp-write and
   rename (snapshot installs and rotation orphans both use the suffix).
   Only called at open time — recovery ignores these files, but they
   accumulate forever otherwise. *)
let cleanup_tmp ~obs dir =
  let cleaned = ref 0 in
  (if Sys.file_exists dir then Sys.readdir dir else [||])
  |> Array.iter (fun f ->
         if Filename.check_suffix f ".tmp" then
           match Sys.remove (Filename.concat dir f) with
           | () -> incr cleaned
           | exception Sys_error _ -> ());
  if !cleaned > 0 then Trace.count obs "store.tmp_cleaned" !cleaned;
  !cleaned

(* ------------------------------------------------------------------ *)
(* Snapshot write / read                                               *)
(* ------------------------------------------------------------------ *)

let dump_tables tables =
  List.map (fun t -> (Table.schema t, Table.to_list t)) tables

(* Write snapshot [id] atomically: tmp file, fsync, rename, dir fsync.
   A crash at any point leaves either no snap-[id] (older generations
   still recoverable) or a complete one. *)
let write_snapshot ~dir ~obs ~id ~serial ~now ~ddl ~aux ~db =
  let body =
    Codec.encode_snapshot
      {
        Codec.serial;
        now;
        ddl;
        base = dump_tables (Database.base_tables db);
        temp = dump_tables (Database.temp_tables db);
        aux;
      }
  in
  let final = Filename.concat dir (snap_name id) in
  let tmp = final ^ ".tmp" in
  let fd =
    Io.openfile ~site:Fault.Snapshot_write tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  (try
     Io.write fd ~site:Fault.Snapshot_write (snap_magic ^ Wal.frame body);
     Io.fsync fd ~site:Fault.Snapshot_write;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (* drop the half-written tmp now rather than waiting for the
        open-time sweep; best effort *)
     (match e with
     | Fault.Crash _ -> ()
     | _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
     raise e);
  Io.rename ~site:Fault.Rotation tmp final;
  fsync_dir dir;
  Trace.count obs "wal.snapshots" 1;
  Trace.count obs "wal.snapshot_bytes" (String.length body)

(* Read and validate snapshot [id]; None when missing, torn, corrupt or
   unreadable (recovery then falls back to the previous generation). *)
let load_snapshot ~dir ~id =
  let path = Filename.concat dir (snap_name id) in
  match Io.read_file ~site:Fault.Recovery_read path with
  | exception Sys_error _ -> None
  | exception Unix.Unix_error _ -> None
  | s -> (
      let m = String.length snap_magic in
      if String.length s < m + 8 || String.sub s 0 m <> snap_magic then None
      else
        let blen = Int32.to_int (String.get_int32_le s m) land 0xFFFFFFFF in
        let crc = Int32.to_int (String.get_int32_le s (m + 4)) land 0xFFFFFFFF in
        if m + 8 + blen <> String.length s then None
        else
          let body = String.sub s (m + 8) blen in
          if Crc32.digest body <> crc then None
          else match Codec.decode_snapshot body with
            | snap -> Some snap
            | exception Codec.Corrupt _ -> None)

(* ------------------------------------------------------------------ *)
(* The durability hook                                                 *)
(* ------------------------------------------------------------------ *)

(* Encode at emit time: the row arrays inside events alias live table
   storage, which later statements mutate in place.  Taking the bytes
   now makes the buffered event immutable for free. *)
(* Buffer even on a dead store: commit uses a non-empty group to tell
   a write statement (must be rejected, typed) from a read (fine). *)
let emit st ev = st.buffer <- Codec.encode_event ev :: st.buffer

let abort st = st.buffer <- []

(* Savepoints over the (newest-first) buffer: the mark is the event
   count at scope entry; rollback drops everything emitted since. *)
let buffer_savepoint st = List.length st.buffer

let buffer_rollback_to st mark =
  let rec drop l k = if k <= 0 then l else
    match l with [] -> [] | _ :: tl -> drop tl (k - 1)
  in
  let len = List.length st.buffer in
  if len > mark then st.buffer <- drop st.buffer (len - mark)

(* Commit with an explicit degradation policy:

   - [Fault.Crash]: the process is dying; store dead, harness recovers.
   - WAL dead (fsync EIO, unhealable append): nothing further can be
     made durable — store dead, typed error propagates, the serving
     layer poisons the batch.
   - append failure with the log healed (ENOSPC/EIO on a write): the
     half-appended group is truncated back off the file, the serial is
     un-bumped, and a typed [Durability] error aborts just this
     statement.  The store stays LIVE (degraded flag set): reads and
     later commits proceed — the canonical disk-full experience. *)
let rec commit st =
  if st.dead then begin
    (* A dead store must not silently accept writes: the in-memory
       mutation would never be durable.  Reads (empty group) proceed. *)
    let had_events = st.buffer <> [] in
    st.buffer <- [];
    if had_events then
      Taupsm_error.raise_error Taupsm_error.Durability
        "store is dead after a storage failure: commit rejected (recover \
         the directory to resume)"
  end
  else begin
    let evs = List.rev st.buffer in
    st.buffer <- [];
    if evs <> [] then begin
      let group_start = Wal.offset st.wal in
      st.serial <- st.serial + 1;
      (* Dirty aux entries ride inside the commit group, ahead of the
         marker.  They are advisory: a truncated group loses them from
         the log (the next snapshot carries the full dump), and replay
         applies them on scan without any prefix obligation. *)
      let auxes =
        List.map
          (fun (name, blob) -> Codec.encode_aux ~name ~blob)
          (st.aux_dirty ())
      in
      (match
         List.iter (Wal.append st.wal) evs;
         List.iter (Wal.append st.wal) auxes;
         Wal.append st.wal (Codec.encode_commit ~serial:st.serial);
         Wal.commit_done st.wal
       with
      | () -> ()
      | exception (Fault.Crash _ as e) ->
          st.dead <- true;
          raise e
      | exception e when Wal.is_dead st.wal ->
          st.dead <- true;
          raise e
      | exception e ->
          st.serial <- st.serial - 1;
          st.degraded <- true;
          Trace.count st.obs "store.commit_aborts" 1;
          Wal.truncate_to st.wal group_start;
          if Wal.is_dead st.wal then st.dead <- true;
          raise e);
      st.commits_since_snap <- st.commits_since_snap + 1;
      Atomic.set st.last_commit (st.snap_id, st.serial, Wal.offset st.wal);
      match st.snapshot_every with
      | Some n when st.commits_since_snap >= max 1 n -> rotate st
      | _ -> ()
    end
  end

(* Rotate to generation [snap_id + 1]: write the new snapshot and open
   the new WAL while the old WAL is still the log of record, then cut
   over.  A crash inside here is safe at every point — either the old
   pair or the new pair is recoverable.

   A snapshot-write failure is survivable: the store falls back to the
   current generation (old WAL still open, every commit still durable)
   and retries at the next rotation window.  A new-WAL failure AFTER
   the snapshot is installed is trickier: recovery would pick the new
   snapshot while fresh commits land in the old WAL — silent loss — so
   the orphan snapshot is neutralized (renamed aside) before falling
   back; only if even that rename fails does the store die. *)
and rotate st =
  let id = st.snap_id + 1 in
  match
    write_snapshot ~dir:st.dir ~obs:st.obs ~id ~serial:st.serial
      ~now:(st.now ()) ~ddl:(st.ddl ()) ~aux:(st.aux ()) ~db:st.db
  with
  | exception (Fault.Crash _ as e) ->
      st.dead <- true;
      raise e
  | exception _ ->
      st.degraded <- true;
      st.commits_since_snap <- 0;
      Trace.count st.obs "store.rotate_fallbacks" 1
  | () -> (
      match
        Wal.create ~policy:st.policy ~obs:st.obs
          (Filename.concat st.dir (wal_name id))
      with
      | exception (Fault.Crash _ as e) ->
          st.dead <- true;
          raise e
      | exception _ -> (
          st.degraded <- true;
          st.commits_since_snap <- 0;
          Trace.count st.obs "store.rotate_fallbacks" 1;
          let orphan = Filename.concat st.dir (snap_name id) in
          match Unix.rename orphan (orphan ^ ".orphan.tmp") with
          | () -> fsync_dir st.dir
          | exception Unix.Unix_error (err, _, _) ->
              st.dead <- true;
              Taupsm_error.raise_error Taupsm_error.Durability
                "rotation failed and orphan snapshot %s cannot be \
                 neutralized (%s): store closed to prevent silent loss"
                (snap_name id) (Unix.error_message err))
      | wal ->
          Wal.close st.wal;
          st.wal <- wal;
          st.snap_id <- id;
          st.commits_since_snap <- 0;
          Atomic.set st.last_commit (id, st.serial, Wal.offset wal))

let hook st =
  {
    Wal_hook.emit = emit st;
    commit = (fun () -> commit st);
    abort = (fun () -> abort st);
    savepoint = (fun () -> buffer_savepoint st);
    rollback_to = buffer_rollback_to st;
  }

(* ------------------------------------------------------------------ *)
(* Attach / recover / resume                                           *)
(* ------------------------------------------------------------------ *)

let init ?(policy = Wal.Batch 16) ?snapshot_every ?(obs = Trace.null)
    ?(aux = fun () -> []) ?(aux_dirty = fun () -> []) ~dir ~db ~now ~ddl () =
  mkdir_p dir;
  ignore (cleanup_tmp ~obs dir);
  let id = match snapshot_ids dir with [] -> 0 | i :: _ -> i + 1 in
  (* a brand-new store has no previous generation to fall back to: a
     storage failure here is typed and the directory left sweepable *)
  let wal =
    try
      write_snapshot ~dir ~obs ~id ~serial:0 ~now:(now ()) ~ddl:(ddl ())
        ~aux:(aux ()) ~db;
      Wal.create ~policy ~obs (Filename.concat dir (wal_name id))
    with Unix.Unix_error (err, _, path) ->
      Taupsm_error.raise_error Taupsm_error.Durability
        "cannot create store generation %d in %s: %s (%s)" id dir
        (Unix.error_message err) path
  in
  fsync_dir dir;
  let st =
    {
      dir;
      policy;
      snapshot_every;
      obs;
      db;
      now;
      ddl;
      aux;
      aux_dirty;
      wal;
      snap_id = id;
      serial = 0;
      commits_since_snap = 0;
      buffer = [];
      dead = false;
      degraded = false;
      last_commit = Atomic.make (id, 0, Wal.offset wal);
    }
  in
  Database.set_wal db (Some (hook st));
  st

(* Apply one replayed event to the recovering database.  Positional
   delete/update records replay against the same row numbering the
   original run saw, so no predicate re-evaluation is needed (or
   possible — predicates are long gone). *)
let apply_event db ~on_ddl ev =
  match ev with
  | Wal_hook.Row_insert (tname, row) ->
      Table.insert (Database.find_table_exn db tname) row
  | Wal_hook.Rows_delete (tname, positions) ->
      let t = Database.find_table_exn db tname in
      let doomed = Hashtbl.create (Array.length positions) in
      Array.iter (fun p -> Hashtbl.replace doomed p ()) positions;
      let i = ref (-1) in
      ignore
        (Table.delete_where
           (fun _ ->
             incr i;
             Hashtbl.mem doomed !i)
           t)
  | Wal_hook.Rows_update (tname, pairs) ->
      let t = Database.find_table_exn db tname in
      let repl = Hashtbl.create (Array.length pairs) in
      Array.iter (fun (p, row) -> Hashtbl.replace repl p row) pairs;
      let i = ref (-1) in
      ignore
        (Table.update_where
           (fun _ ->
             incr i;
             Hashtbl.mem repl !i)
           (fun _ -> Hashtbl.find repl !i)
           t)
  | Wal_hook.Table_clear tname -> Table.clear (Database.find_table_exn db tname)
  | Wal_hook.Table_create (sch, temp, rows) ->
      let t = Table.of_rows sch rows in
      if temp then Database.add_temp_table db t else Database.add_table db t
  | Wal_hook.Table_drop tname -> Database.drop_table db tname
  | Wal_hook.Temp_tables_drop -> Database.drop_temp_tables db
  | Wal_hook.Catalog_ddl sql -> on_ddl sql

let recover ?(obs = Trace.null) ?(on_aux = fun _ _ -> ()) ?stop_at_serial ~dir
    ~db ~on_ddl ~on_now () =
  let t0 = Mono_clock.now () in
  Trace.with_span obs "recover" (fun () ->
      let ids = snapshot_ids dir in
      if ids = [] then
        Taupsm_error.raise_error Taupsm_error.Durability
          "no durable store in %s" dir;
      (* newest intact snapshot, falling back generation by generation;
         under [stop_at_serial] a snapshot taken after the target
         serial is useless (its state is already past the mark), so
         fall back until one at or before the target is found *)
      let skipped = ref 0 in
      let rec pick = function
        | [] ->
            Taupsm_error.raise_error Taupsm_error.Durability
              "no usable snapshot in %s (%d generation(s)%s)" dir
              (List.length ids)
              (match stop_at_serial with
              | None -> ", all corrupt"
              | Some n -> Printf.sprintf " corrupt or past serial %d" n)
        | id :: rest -> (
            match load_snapshot ~dir ~id with
            | Some snap
              when (match stop_at_serial with
                   | Some n -> snap.Codec.serial > n
                   | None -> false) ->
                incr skipped;
                Trace.count obs "recover.snapshots_skipped" 1;
                pick rest
            | Some snap -> (id, snap)
            | None ->
                incr skipped;
                Trace.count obs "recover.snapshots_skipped" 1;
                pick rest)
      in
      let id, snap = pick ids in
      Trace.with_span obs "recover.load_snapshot" (fun () ->
          List.iter
            (fun (sch, rows) -> Database.add_table db (Table.of_rows sch rows))
            snap.Codec.base;
          List.iter
            (fun (sch, rows) ->
              Database.add_temp_table db (Table.of_rows sch rows))
            snap.Codec.temp;
          List.iter on_ddl snap.Codec.ddl;
          List.iter (fun (name, blob) -> on_aux name blob) snap.Codec.aux;
          on_now snap.Codec.now);
      (* Replay: buffer each record group, apply only on its intact
         commit marker.  An uncommitted suffix — torn tail, corrupt
         record, or simply no marker yet — is never applied, which is
         the whole committed-prefix guarantee.  [committed] tracks the
         offset just past the last intact commit marker: that — not
         the last intact record — is where {!resume} must truncate, or
         intact-but-uncommitted event records surviving a torn tail
         would be adopted by the next statement's commit marker.

         Under [stop_at_serial] (point-in-time restore) groups with a
         later serial are scanned but not applied: replay freezes at
         the target commit while the scan still validates the rest of
         the log. *)
      let pending = ref [] in
      let commits = ref 0 in
      let serial = ref snap.Codec.serial in
      let committed = ref Wal.header_len in
      let fatal = ref None in
      let frozen = ref false in
      let records = ref 0 in
      let bytes = ref 0 in
      let replay_wal g =
        pending := [];
        committed := Wal.header_len;
        Wal.scan
          (Filename.concat dir (wal_name g))
          ~f:(fun ~off payload ->
                if not !frozen then
                  match Codec.decode_record payload with
                  | Codec.Revent ev -> pending := ev :: !pending
                  | Codec.Raux (name, blob) ->
                      (* Advisory: applied on scan, independent of the
                         commit-marker discipline — even the dirty-drain
                         records of a group whose marker never made it
                         carry valid (merely newer) engine state. *)
                      on_aux name blob
                  | Codec.Rcommit s
                    when (match stop_at_serial with
                         | Some n -> s > n
                         | None -> false) ->
                      frozen := true;
                      pending := []
                  | Codec.Rcommit s ->
                      (* The whole group decoded (every event record's
                         payload parsed before its marker was reached);
                         an apply failure here is a semantically bad but
                         CRC-valid record and must fail recovery loudly:
                         earlier events of the group are already in, so
                         silently stopping would hand back a database
                         with a partially applied statement. *)
                      (match List.iter (apply_event db ~on_ddl) (List.rev !pending)
                       with
                      | () -> ()
                      | exception e ->
                          fatal := Some (s, e);
                          raise e);
                      pending := [];
                      incr commits;
                      serial := s;
                      committed := off)
      in
      (* Replay the picked generation's WAL, then CHAIN into each newer
         generation's WAL while the current one scanned clean to EOF: a
         generation's log begins exactly where its predecessor's ends
         (rotation happens only after a commit), so a corrupt or
         quarantined snapshot costs nothing as long as the WAL chain
         from the last loadable snapshot is unbroken.  A WAL that stops
         early (torn tail, bad CRC) ends the chain — newer logs assume
         a base state this replay never reached. *)
      let rec chain g =
        let scan =
          Trace.with_span obs "recover.replay" (fun () -> replay_wal g)
        in
        (match !fatal with
        | Some (s, e) ->
            Taupsm_error.raise_error Taupsm_error.Durability
              "recovery failed applying committed statement %d — WAL record \
               is CRC-valid but semantically inconsistent (%s)"
              s (Printexc.to_string e)
        | None -> ());
        records := !records + scan.Wal.records;
        bytes := !bytes + scan.Wal.bytes;
        if
          scan.Wal.stop = Wal.Eof
          && !pending = []
          && (not !frozen)
          && Sys.file_exists (Filename.concat dir (wal_name (g + 1)))
        then begin
          Trace.count obs "recover.wal_chained" 1;
          chain (g + 1)
        end
        else (g, scan)
      in
      let live_gen, scan = chain id in
      let seconds = Mono_clock.now () -. t0 in
      Trace.count obs "recover.commits_replayed" !commits;
      Trace.count obs "recover.records" !records;
      Trace.count obs "recover.bytes" !bytes;
      {
        snapshot_id = id;
        wal_generation = live_gen;
        snapshots_skipped = !skipped;
        commits_replayed = !commits;
        records_scanned = !records;
        bytes_scanned = !bytes;
        stop = Wal.stop_string scan.Wal.stop;
        last_serial = !serial;
        snapshot_now = snap.Codec.now;
        wal_good_offset = scan.Wal.good_offset;
        wal_committed_offset = !committed;
        seconds;
      })

let resume ?(policy = Wal.Batch 16) ?snapshot_every ?(obs = Trace.null)
    ?(aux = fun () -> []) ?(aux_dirty = fun () -> []) ~dir ~db ~now ~ddl
    (r : report) =
  ignore (cleanup_tmp ~obs dir);
  (* continue on the generation whose WAL is the live log — past the
     chain, when recovery walked across rotations *)
  let path = Filename.concat dir (wal_name r.wal_generation) in
  let wal =
    (* Truncate to the last intact COMMIT marker, not the last intact
       record: a crash mid-statement leaves that statement's event
       records intact ahead of the marker, and keeping them would let
       the next commit marker adopt a statement that never committed. *)
    if Sys.file_exists path && r.stop <> Wal.stop_string Wal.Bad_magic then
      Wal.reopen ~policy ~obs path ~good_offset:r.wal_committed_offset
    else Wal.create ~policy ~obs path
  in
  let st =
    {
      dir;
      policy;
      snapshot_every;
      obs;
      db;
      now;
      ddl;
      aux;
      aux_dirty;
      wal;
      snap_id = r.wal_generation;
      serial = r.last_serial;
      commits_since_snap = r.commits_replayed;
      buffer = [];
      dead = false;
      degraded = false;
      last_commit =
        Atomic.make (r.wal_generation, r.last_serial, Wal.offset wal);
    }
  in
  Database.set_wal db (Some (hook st));
  st

let snapshot st = if not st.dead then rotate st

(* Append the full aux dump to the live WAL, outside any commit group.
   Used at detach so the last statements' calibration updates (drained
   dirty sets ride only on the NEXT commit) reach disk: recovery applies
   tag-10 records on scan, so a trailing marker-less record still
   loads — {!resume} then truncates it away and the engine re-flushes. *)
let flush_aux st =
  if not st.dead then begin
    let entries = st.aux () in
    if entries <> [] then begin
      List.iter
        (fun (name, blob) -> Wal.append st.wal (Codec.encode_aux ~name ~blob))
        entries;
      Wal.sync st.wal
    end
  end

let detach st =
  if not st.dead then begin
    Database.set_wal st.db None;
    Wal.close st.wal;
    st.dead <- true
  end

(* Group-commit hook: force the WAL to disk now.  A store attached with
   policy [Off] defers every per-commit fsync to explicit calls here —
   the serving layer's writer lane executes a batch of statements, syncs
   once, and only then acks every session in the batch. *)
let sync st = if not st.dead then Wal.sync st.wal

let serial st = st.serial
let is_dead st = st.dead
let is_degraded st = st.degraded
let last_commit st = Atomic.get st.last_commit

(* ------------------------------------------------------------------ *)
(* Online scrub                                                        *)
(* ------------------------------------------------------------------ *)

type gen_status = {
  gen_id : int;
  snap_ok : bool;
  snap_serial : int;  (* -1 when the snapshot is unreadable *)
  wal_stop : string;
  wal_records : int;
  wal_commits : int;
  wal_last_serial : int;  (* snapshot serial when no commit is intact *)
  gen_quarantined : string list;
}

type scrub_report = {
  generations : gen_status list;  (* newest first *)
  intact_generations : int;
  recoverable_serial : int;  (* -1 when nothing is recoverable *)
  quarantined : string list;
}

(* CRC-walk one generation without touching any database. *)
let scrub_generation ~dir id =
  let snap = load_snapshot ~dir ~id in
  let snap_serial = match snap with Some s -> s.Codec.serial | None -> -1 in
  let commits = ref 0 in
  let last = ref snap_serial in
  let scan =
    Wal.scan
      (Filename.concat dir (wal_name id))
      ~f:(fun ~off:_ payload ->
        match Codec.decode_record payload with
        | Codec.Revent _ | Codec.Raux _ -> ()
        | Codec.Rcommit s ->
            incr commits;
            last := s)
  in
  {
    gen_id = id;
    snap_ok = snap <> None;
    snap_serial;
    wal_stop = Wal.stop_string scan.Wal.stop;
    wal_records = scan.Wal.records;
    wal_commits = !commits;
    wal_last_serial = !last;
    gen_quarantined = [];
  }

(* Scrub every retained generation: CRC-walk each snapshot and WAL,
   quarantine corrupt files of generations OLDER than the newest one
   (renamed to [*.quarantine], never deleted), and report which commits
   remain recoverable.  The newest generation is never touched — it may
   be live under a serving store, and even offline its corruption is an
   operator decision, not a janitorial one.  A torn WAL tail is a
   normal crash artifact, not corruption: the committed prefix ahead of
   it is good, so the file stays.  Reads go through {!Io.read_file}, so
   scrub itself is exercised by the fault harness; re-running after any
   interruption is safe because quarantine renames are idempotent. *)
(* Generations present in [dir]: union of snapshot and WAL ids, newest
   first — after a quarantine a generation can be WAL-only, and that
   WAL is still load-bearing for chained recovery. *)
let generation_ids dir =
  let files = if Sys.file_exists dir then Sys.readdir dir else [||] in
  let ids =
    Array.to_list files
    |> List.filter_map (fun f ->
           match Scanf.sscanf_opt f "snap-%d.bin%!" (fun i -> i) with
           | Some i -> Some i
           | None -> Scanf.sscanf_opt f "wal-%d.log%!" (fun i -> i))
  in
  List.sort_uniq (fun a b -> compare b a) ids

let scrub ?(obs = Trace.null) ?(quarantine = true) ~dir () =
  Trace.with_span obs "scrub" (fun () ->
      let ids = generation_ids dir in
      let quarantined = ref [] in
      let put_aside id g =
        let files = ref [] in
        if not g.snap_ok && Sys.file_exists (Filename.concat dir (snap_name id))
        then files := snap_name id :: !files;
        (match g.wal_stop with
        | "bad_crc" | "bad_record" | "bad_magic" ->
            if Sys.file_exists (Filename.concat dir (wal_name id)) then
              files := wal_name id :: !files
        | _ -> ());
        let moved =
          List.filter
            (fun f ->
              let src = Filename.concat dir f in
              match Unix.rename src (src ^ ".quarantine") with
              | () -> true
              | exception Unix.Unix_error _ -> false)
            !files
        in
        if moved <> [] then begin
          fsync_dir dir;
          Trace.count obs "scrub.quarantined" (List.length moved);
          quarantined := !quarantined @ moved
        end;
        moved
      in
      let statuses = List.map (fun id -> scrub_generation ~dir id) ids in
      (* Only generations STRICTLY OLDER than the newest one with an
         intact snapshot may be quarantined: everything at or above
         that line is (or may become) load-bearing for recovery, and a
         fallback WAL's committed prefix must never disappear while a
         corrupt newer snapshot could still force recovery onto it. *)
      let safe_line =
        List.fold_left
          (fun acc g -> if acc = max_int && g.snap_ok then g.gen_id else acc)
          max_int statuses
      in
      let generations =
        List.map
          (fun g ->
            if quarantine && g.gen_id < safe_line then
              { g with gen_quarantined = put_aside g.gen_id g }
            else g)
          statuses
      in
      let intact =
        List.filter
          (fun g ->
            g.snap_ok
            && (match g.wal_stop with
               | "eof" | "torn_tail" | "missing" -> true
               | _ -> false))
          generations
      in
      let recoverable_serial =
        (* recovery loads the newest loadable snapshot, replays its
           WAL, and chains into each newer generation's WAL while the
           current one scans clean to EOF — mirror that walk here *)
        let rec base = function
          | [] -> None
          | g :: rest -> if g.snap_ok then Some g else base rest
        in
        match base generations with
        | None -> -1
        | Some b ->
            let rec extend serial g =
              match
                List.find_opt (fun s -> s.gen_id = g) generations
              with
              | None -> serial
              | Some st ->
                  let serial = max serial st.wal_last_serial in
                  if st.wal_stop = "eof" then extend serial (g + 1)
                  else serial
            in
            extend b.snap_serial b.gen_id
      in
      Trace.count obs "scrub.generations" (List.length generations);
      {
        generations;
        intact_generations = List.length intact;
        recoverable_serial;
        quarantined = !quarantined;
      })

(* ------------------------------------------------------------------ *)
(* Hot backup                                                          *)
(* ------------------------------------------------------------------ *)

type backup_report = {
  backup_snapshot_id : int;
  backup_serial : int;
  backup_wal_bytes : int;
  backup_snap_bytes : int;
}

let meta_name = "backup.meta"

let write_meta ~target (r : backup_report) =
  let body =
    Printf.sprintf "snapshot_id=%d\nserial=%d\nwal_bytes=%d\nsnap_bytes=%d\n"
      r.backup_snapshot_id r.backup_serial r.backup_wal_bytes
      r.backup_snap_bytes
  in
  let tmp = Filename.concat target (meta_name ^ ".tmp") in
  let oc = open_out_bin tmp in
  output_string oc body;
  close_out oc;
  Unix.rename tmp (Filename.concat target meta_name)

(* Copy generation [id] truncated to [wal_len] committed bytes into
   [target].  The snapshot file is immutable once renamed into place
   and WAL bytes below a committed offset are never rewritten, so the
   copies are consistent even while a serving store keeps appending.
   Each file lands via tmp+rename ({!Io.copy_file}), so a backup
   interrupted at any point leaves no partial file under a final name
   and re-running simply overwrites — idempotent by construction. *)
let backup_pair ~obs ~dir ~target ~id ~serial ~wal_len =
  mkdir_p target;
  let snap_bytes =
    Io.copy_file ~site:Fault.Snapshot_write
      (Filename.concat dir (snap_name id))
      (Filename.concat target (snap_name id))
  in
  let wal_src = Filename.concat dir (wal_name id) in
  let wal_bytes =
    if Sys.file_exists wal_src then
      Io.copy_file ~len:wal_len ~site:Fault.Snapshot_write wal_src
        (Filename.concat target (wal_name id))
    else 0
  in
  let r =
    {
      backup_snapshot_id = id;
      backup_serial = serial;
      backup_wal_bytes = wal_bytes;
      backup_snap_bytes = snap_bytes;
    }
  in
  write_meta ~target r;
  fsync_dir target;
  Trace.count obs "backup.files" 2;
  Trace.count obs "backup.bytes" (snap_bytes + wal_bytes);
  r

(* Hot backup: capture the (snap_id, serial, committed offset) triple
   the commit path maintains atomically, then copy those immutable
   bytes while serving continues.  The archive is itself a valid store
   directory whose recovery ends exactly at the captured commit. *)
let backup st ~target =
  if st.dead then
    Taupsm_error.raise_error Taupsm_error.Durability
      "cannot back up a dead store";
  let id, serial, wal_len = Atomic.get st.last_commit in
  (* a store resumed past a quarantined snapshot has a WAL-only live
     generation; the single-pair archive needs its base snapshot back *)
  if not (Sys.file_exists (Filename.concat st.dir (snap_name id))) then
    Taupsm_error.raise_error Taupsm_error.Durability
      "cannot back up: snapshot generation %d is missing (quarantined?) — \
       take a fresh snapshot first"
      id;
  backup_pair ~obs:st.obs ~dir:st.dir ~target ~id ~serial ~wal_len

(* Cold backup of a store directory nobody is serving from: pick the
   newest intact generation and its committed WAL prefix by scanning. *)
let backup_dir ?(obs = Trace.null) ~dir ~target () =
  let ids = snapshot_ids dir in
  if ids = [] then
    Taupsm_error.raise_error Taupsm_error.Durability
      "no durable store in %s" dir;
  let rec pick = function
    | [] ->
        Taupsm_error.raise_error Taupsm_error.Durability
          "no intact snapshot in %s" dir
    | id :: rest -> (
        match load_snapshot ~dir ~id with
        | Some snap -> (id, snap)
        | None -> pick rest)
  in
  let id, snap = pick ids in
  let serial = ref snap.Codec.serial in
  let committed = ref Wal.header_len in
  ignore
    (Wal.scan
       (Filename.concat dir (wal_name id))
       ~f:(fun ~off payload ->
         match Codec.decode_record payload with
         | Codec.Revent _ | Codec.Raux _ -> ()
         | Codec.Rcommit s ->
             serial := s;
             committed := off));
  backup_pair ~obs ~dir ~target ~id ~serial:!serial ~wal_len:!committed
