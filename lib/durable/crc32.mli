(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) — the
    checksum guarding every write-ahead-log record and snapshot body.

    The on-disk format pins this exact polynomial and bit order: the
    golden-vector tests in [test_durable] assert
    [digest "123456789" = 0xCBF43926], the check value every standard
    CRC-32 implementation agrees on. *)

val digest : string -> int
(** CRC-32 of a whole string, as a non-negative int in [0, 2^32). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum ([digest s] is
    [update 0 s 0 (String.length s)]). *)
