(** The durable store: a directory of paired snapshot and WAL files
    giving the engine crash-safe persistence with a committed-prefix
    guarantee.

    Layout of a store directory:

    - [snap-%08d.bin] — full-database snapshot [K]: magic ["TPSMSNP1"]
      plus one CRC-framed {!Codec.snapshot} body, written to a [.tmp]
      and renamed into place.
    - [wal-%08d.log] — records of every statement committed after
      snapshot [K] (see {!Wal}).

    Protocol: storage events buffered by the {!Sqldb.Wal_hook} are
    encoded {e at emit time} (rows are mutated in place by later
    statements, so the bytes must be taken before control returns) and
    appended — followed by a commit marker — only when the outermost
    atomic unit commits.  A rolled-back statement leaves no bytes on
    disk; a crash mid-append leaves a torn tail that recovery cuts at
    the last intact commit marker.  Recovery therefore always
    reconstructs the database exactly as of {e some prefix} of the
    committed statements, never a partial statement.

    After a simulated crash ({!Fault.Crash}) the store is dead: every
    hook call no-ops, mirroring a process that is gone.  The harness
    then recovers from disk into a fresh engine. *)

type t

type report = {
  snapshot_id : int;  (** snapshot generation recovery loaded *)
  wal_generation : int;
      (** generation whose WAL is the live log after replay — greater
          than [snapshot_id] when recovery chained across rotations
          (each generation's log begins exactly where its
          predecessor's ends, so a corrupt or quarantined snapshot
          costs nothing while the WAL chain is unbroken) *)
  snapshots_skipped : int;
      (** newer generations passed over because they were corrupt,
          unreadable, or (under [stop_at_serial]) past the target —
          non-zero means recovery fell back *)
  commits_replayed : int;  (** commit markers applied from the WAL *)
  records_scanned : int;
  bytes_scanned : int;  (** WAL file size at recovery time *)
  stop : string;  (** {!Wal.stop_string} of why the scan ended *)
  last_serial : int;  (** store-wide serial of the last replayed commit *)
  snapshot_now : int;  (** engine clock stored in the snapshot *)
  wal_good_offset : int;  (** byte offset past the last intact record *)
  wal_committed_offset : int;
      (** byte offset past the last intact commit marker — where
          {!resume} truncates, so intact event records of an
          uncommitted statement never survive into the resumed log *)
  seconds : float;  (** recovery wall time (monotonic clock) *)
}

val exists : string -> bool
(** Whether [dir] holds at least one snapshot (i.e. a store to recover). *)

val init :
  ?policy:Wal.sync_policy ->
  ?snapshot_every:int ->
  ?obs:Trace.t ->
  ?aux:(unit -> (string * string) list) ->
  ?aux_dirty:(unit -> (string * string) list) ->
  dir:string ->
  db:Sqldb.Database.t ->
  now:(unit -> int) ->
  ddl:(unit -> string list) ->
  unit ->
  t
(** Fresh attach: create [dir] if needed, write a snapshot of the
    database as it stands, open a new WAL and install the durability
    hook on [db].  [now] and [ddl] are polled at snapshot time (the
    engine clock and the catalog's view/routine definitions); [aux] is
    the full dump of auxiliary engine state (named opaque blobs, e.g.
    strategy calibration), likewise polled at snapshot time, while
    [aux_dirty] drains the entries changed since its last call —
    appended as tag-10 records inside each commit group.
    [snapshot_every n] rotates to a fresh snapshot + WAL pair every
    [n] commits; omitted means WAL-only until {!snapshot} is called. *)

val recover :
  ?obs:Trace.t ->
  ?on_aux:(string -> string -> unit) ->
  ?stop_at_serial:int ->
  dir:string ->
  db:Sqldb.Database.t ->
  on_ddl:(string -> unit) ->
  on_now:(int -> unit) ->
  unit ->
  report
(** Rebuild state into the (empty, fresh) [db]: load the newest intact
    snapshot — falling back to older generations if the newest is
    corrupt — then replay its WAL, applying each record group only
    when its commit marker is intact, and stop at the first torn or
    corrupt record.  DDL statements (from the snapshot and from
    [Catalog_ddl] records) are handed to [on_ddl]; the snapshot's
    engine clock to [on_now].  Raises [Taupsm_error.Error] with code
    [Durability] when no snapshot generation is loadable, or when a
    CRC-valid commit group fails to apply (a semantically inconsistent
    record must fail recovery loudly, never yield a silently partial
    database).

    [stop_at_serial n] is point-in-time restore: replay freezes after
    the commit with serial [n] — later groups are scanned but never
    applied, and snapshot generations taken after serial [n] are passed
    over so an older generation can replay up to the mark.  The
    resulting [report.last_serial] is at most [n].

    [on_aux name blob] receives each auxiliary blob — first from the
    snapshot, then from every tag-10 WAL record in scan order (later
    blobs supersede earlier ones).  Aux records are advisory engine
    state outside the committed-prefix guarantee: they are applied on
    scan whether or not their group's marker survived. *)

val resume :
  ?policy:Wal.sync_policy ->
  ?snapshot_every:int ->
  ?obs:Trace.t ->
  ?aux:(unit -> (string * string) list) ->
  ?aux_dirty:(unit -> (string * string) list) ->
  dir:string ->
  db:Sqldb.Database.t ->
  now:(unit -> int) ->
  ddl:(unit -> string list) ->
  report ->
  t
(** Attach after {!recover}: truncate the recovered WAL to its last
    intact commit marker ([wal_committed_offset]) — discarding any
    intact-but-uncommitted event records a mid-statement crash left
    behind — and append from there, keeping serial numbers continuous.
    If the WAL file is missing or had a foreign header, a fresh one is
    created instead. *)

val snapshot : t -> unit
(** Force a rotation now: write snapshot [K+1] (old generations are
    retained as recovery fallbacks) and start WAL [K+1]. *)

val flush_aux : t -> unit
(** Append the full aux dump to the live WAL (outside any commit group)
    and sync.  Called before {!detach} so calibration updates from the
    final statements — whose dirty drain would only ride the next
    commit — survive a clean shutdown.  No-op on a dead store or when
    the dump is empty. *)

val detach : t -> unit
(** Uninstall the hook from the database and close the WAL.  The store
    is dead afterwards. *)

val sync : t -> unit
(** Force the WAL to disk now, regardless of sync policy — the
    group-commit primitive: attach with policy [Off], execute a batch of
    statements, call [sync] once, then ack every session in the batch.
    No-op on a dead store. *)

val serial : t -> int
(** Serial of the last committed statement. *)

val is_dead : t -> bool
(** True after a crash, a fatal I/O error (e.g. fsync EIO), or
    {!detach}. *)

val is_degraded : t -> bool
(** True once the store has survived a storage fault — an aborted
    commit group (ENOSPC/EIO on append) or a rotation fallback.  All
    acknowledged data is still safe; the flag is operator signal, not a
    correctness state. *)

val last_commit : t -> int * int * int
(** [(snap_id, serial, wal_committed_offset)] as of the last fully
    appended commit group — the consistency point hot {!backup}
    captures.  Safe to read from any domain. *)

(** {1 Online scrub}

    CRC-walks every retained snapshot + WAL generation without touching
    any database, so it can run against a live store directory (reads
    see a consistent committed prefix; a torn tail on the live WAL is a
    normal artifact, reported but never flagged as corruption). *)

type gen_status = {
  gen_id : int;
  snap_ok : bool;  (** snapshot present, CRC-valid and decodable *)
  snap_serial : int;  (** serial stored in the snapshot; -1 if unreadable *)
  wal_stop : string;  (** {!Wal.stop_string} of the WAL walk *)
  wal_records : int;
  wal_commits : int;  (** intact commit markers *)
  wal_last_serial : int;
      (** serial of the last intact commit, or the snapshot serial when
          the WAL has none *)
  gen_quarantined : string list;  (** files this scrub renamed aside *)
}

type scrub_report = {
  generations : gen_status list;  (** newest first *)
  intact_generations : int;
  recoverable_serial : int;
      (** the commit serial {!recover} would reach right now; -1 when
          no generation is recoverable *)
  quarantined : string list;
}

val scrub : ?obs:Trace.t -> ?quarantine:bool -> dir:string -> unit -> scrub_report
(** Walk every generation in [dir].  With [quarantine] (default [true])
    corrupt files — a snapshot failing CRC/decode, a WAL stopping on
    [bad_crc]/[bad_record]/[bad_magic] — are renamed to
    [*.quarantine] (never deleted), but ONLY in generations strictly
    older than the newest one with an intact snapshot: nothing a future
    recovery might still need is ever moved.  Idempotent and
    re-runnable after any interruption. *)

(** {1 Hot backup} *)

type backup_report = {
  backup_snapshot_id : int;
  backup_serial : int;  (** the commit the archive restores to *)
  backup_wal_bytes : int;
  backup_snap_bytes : int;
}

val backup : t -> target:string -> backup_report
(** Copy the newest intact generation — snapshot plus the committed WAL
    prefix captured by {!last_commit} — into [target] while the store
    keeps serving.  The archive is itself a valid store directory
    (plus a [backup.meta] manifest) whose recovery ends exactly at the
    captured commit.  Every file lands via tmp+rename, so an
    interrupted backup leaves no partial file under a final name and
    re-running is safe. *)

val backup_dir :
  ?obs:Trace.t -> dir:string -> target:string -> unit -> backup_report
(** Cold variant for a store directory nobody is serving from: scans to
    find the newest intact generation and its committed prefix. *)
