(** The durable store: a directory of paired snapshot and WAL files
    giving the engine crash-safe persistence with a committed-prefix
    guarantee.

    Layout of a store directory:

    - [snap-%08d.bin] — full-database snapshot [K]: magic ["TPSMSNP1"]
      plus one CRC-framed {!Codec.snapshot} body, written to a [.tmp]
      and renamed into place.
    - [wal-%08d.log] — records of every statement committed after
      snapshot [K] (see {!Wal}).

    Protocol: storage events buffered by the {!Sqldb.Wal_hook} are
    encoded {e at emit time} (rows are mutated in place by later
    statements, so the bytes must be taken before control returns) and
    appended — followed by a commit marker — only when the outermost
    atomic unit commits.  A rolled-back statement leaves no bytes on
    disk; a crash mid-append leaves a torn tail that recovery cuts at
    the last intact commit marker.  Recovery therefore always
    reconstructs the database exactly as of {e some prefix} of the
    committed statements, never a partial statement.

    After a simulated crash ({!Fault.Crash}) the store is dead: every
    hook call no-ops, mirroring a process that is gone.  The harness
    then recovers from disk into a fresh engine. *)

type t

type report = {
  snapshot_id : int;  (** snapshot generation recovery loaded *)
  commits_replayed : int;  (** commit markers applied from the WAL *)
  records_scanned : int;
  bytes_scanned : int;  (** WAL file size at recovery time *)
  stop : string;  (** {!Wal.stop_string} of why the scan ended *)
  last_serial : int;  (** store-wide serial of the last replayed commit *)
  snapshot_now : int;  (** engine clock stored in the snapshot *)
  wal_good_offset : int;  (** byte offset past the last intact record *)
  wal_committed_offset : int;
      (** byte offset past the last intact commit marker — where
          {!resume} truncates, so intact event records of an
          uncommitted statement never survive into the resumed log *)
  seconds : float;  (** recovery wall time (monotonic clock) *)
}

val exists : string -> bool
(** Whether [dir] holds at least one snapshot (i.e. a store to recover). *)

val init :
  ?policy:Wal.sync_policy ->
  ?snapshot_every:int ->
  ?obs:Trace.t ->
  dir:string ->
  db:Sqldb.Database.t ->
  now:(unit -> int) ->
  ddl:(unit -> string list) ->
  unit ->
  t
(** Fresh attach: create [dir] if needed, write a snapshot of the
    database as it stands, open a new WAL and install the durability
    hook on [db].  [now] and [ddl] are polled at snapshot time (the
    engine clock and the catalog's view/routine definitions).
    [snapshot_every n] rotates to a fresh snapshot + WAL pair every
    [n] commits; omitted means WAL-only until {!snapshot} is called. *)

val recover :
  ?obs:Trace.t ->
  dir:string ->
  db:Sqldb.Database.t ->
  on_ddl:(string -> unit) ->
  on_now:(int -> unit) ->
  unit ->
  report
(** Rebuild state into the (empty, fresh) [db]: load the newest intact
    snapshot — falling back to older generations if the newest is
    corrupt — then replay its WAL, applying each record group only
    when its commit marker is intact, and stop at the first torn or
    corrupt record.  DDL statements (from the snapshot and from
    [Catalog_ddl] records) are handed to [on_ddl]; the snapshot's
    engine clock to [on_now].  Raises [Taupsm_error.Error] with code
    [Durability] when no snapshot generation is loadable, or when a
    CRC-valid commit group fails to apply (a semantically inconsistent
    record must fail recovery loudly, never yield a silently partial
    database). *)

val resume :
  ?policy:Wal.sync_policy ->
  ?snapshot_every:int ->
  ?obs:Trace.t ->
  dir:string ->
  db:Sqldb.Database.t ->
  now:(unit -> int) ->
  ddl:(unit -> string list) ->
  report ->
  t
(** Attach after {!recover}: truncate the recovered WAL to its last
    intact commit marker ([wal_committed_offset]) — discarding any
    intact-but-uncommitted event records a mid-statement crash left
    behind — and append from there, keeping serial numbers continuous.
    If the WAL file is missing or had a foreign header, a fresh one is
    created instead. *)

val snapshot : t -> unit
(** Force a rotation now: write snapshot [K+1] (old generations are
    retained as recovery fallbacks) and start WAL [K+1]. *)

val detach : t -> unit
(** Uninstall the hook from the database and close the WAL.  The store
    is dead afterwards. *)

val sync : t -> unit
(** Force the WAL to disk now, regardless of sync policy — the
    group-commit primitive: attach with policy [Off], execute a batch of
    statements, call [sync] once, then ack every session in the batch.
    No-op on a dead store. *)

val serial : t -> int
(** Serial of the last committed statement. *)

val is_dead : t -> bool
(** True after a crash, an I/O error, or {!detach}. *)
