(** The write-ahead-log file layer: append-only framed records with
    per-record CRC-32, crash-point-aware writes, and a recovery scanner
    tolerant of torn tails.

    On-disk layout: an 8-byte magic ["TPSMWAL1"], then zero or more
    records, each framed as

    {v
      +----------------+----------------+------------------+
      | u32 LE length  | u32 LE CRC-32  |  payload bytes   |
      +----------------+----------------+------------------+
    v}

    with the CRC taken over the payload alone.  Payloads are opaque
    here — {!Codec} gives them meaning. *)

type sync_policy =
  | Always  (** fsync after every commit marker *)
  | Batch of int  (** fsync every [n] commit markers *)
  | Off  (** never fsync; the OS flushes when it pleases *)

type t

val magic : string
val header_len : int

val create : ?policy:sync_policy -> ?obs:Trace.t -> string -> t
(** Create (truncating) a fresh WAL file: writes the magic and fsyncs. *)

val reopen : ?policy:sync_policy -> ?obs:Trace.t -> string -> good_offset:int -> t
(** Reopen an existing WAL for appending after recovery, truncating the
    file to [good_offset] first so a torn or corrupt tail can never be
    misread as valid once fresh records are appended after it. *)

val append : t -> string -> unit
(** Frame and append one record payload.  All bytes pass through
    {!Fault.crash_allowance}: under an armed crash point the permitted
    prefix is written (a torn record) and {!Fault.Crash} is raised,
    after which this WAL is dead and every further operation no-ops.

    A syscall failure (ENOSPC, EIO, injected or genuine) is NOT fatal:
    the partial record is truncated back off the file and a typed
    [Durability] error is raised with the log intact and live, so the
    caller can abort just the current statement.  Only if that healing
    truncate itself fails does the log die. *)

val truncate_to : t -> int -> unit
(** Cut the log back to byte offset [off] — the group-abort primitive
    for erasing already-appended events of a statement whose commit
    failed.  Fatal (log dead, typed [Durability] error) if the
    filesystem refuses. *)

val commit_done : t -> unit
(** Note that a commit marker was just appended and apply the fsync
    policy. *)

val sync : t -> unit
(** Fsync now, regardless of policy — the group-commit hook: a writer
    lane running with policy [Off] calls this once per batch so a single
    fsync covers every commit marker in it.  No-op on a dead WAL. *)

val offset : t -> int
(** Bytes written so far, including the magic header. *)

val is_dead : t -> bool
(** True after a crash, a fatal I/O error, or {!close}.  A log that
    survived an append failure (statement aborted, file healed) is NOT
    dead. *)

val close : t -> unit
(** Fsync (unless the policy is [Off]) and close.  Idempotent; no-op on
    a dead WAL. *)

val write_durable : Unix.file_descr -> site:Fault.io_site -> string -> unit
(** Fault- and crash-point-aware whole-string write (an alias for
    {!Io.write}) used for every durable byte in this layer; the
    snapshot writer shares it.  On a crash the fd is closed before
    {!Fault.Crash} is raised — a real crash would drop the descriptor
    too. *)

val frame : string -> string
(** The framed bytes ([length ^ crc ^ payload]) for one payload —
    exposed so tests can pin the format and build corrupt files. *)

(** {1 Recovery scan} *)

type stop =
  | Eof  (** clean end of file *)
  | Torn_tail  (** trailing partial record (normal after a crash) *)
  | Bad_crc  (** checksum mismatch or impossible length *)
  | Bad_record  (** CRC passed but the payload did not parse *)
  | Bad_magic  (** missing or foreign header *)
  | Missing  (** no such file (e.g. crash between snapshot and WAL creation) *)
  | Io_error  (** the read itself failed (EIO): nothing scanned, reported loudly *)

val stop_string : stop -> string

type scan = {
  good_offset : int;  (** end of the last intact, parsed record *)
  records : int;
  bytes : int;  (** file size as read *)
  stop : stop;
}

val scan : string -> f:(off:int -> string -> unit) -> scan
(** Read the file once, invoking [f] on every intact record payload in
    order — [off] is the byte offset just past that record's frame, so
    a caller recognising commit markers can remember the exact
    committed boundary — stopping (without raising) at the first torn,
    corrupt or unparseable record.  [Missing] and [Bad_magic] report
    zero records and [good_offset = header_len]. *)
