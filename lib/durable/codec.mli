(** Binary codec for write-ahead-log records and snapshot bodies.

    Everything is little-endian.  A record payload is a tag byte
    followed by tag-specific fields; primitives are:

    - [u8] — one byte
    - [u32] — 4-byte unsigned little-endian (lengths, counts, positions)
    - [i64] — 8-byte signed little-endian (ints, dates, serials)
    - [f64] — IEEE-754 double as its 8-byte bit pattern
    - [str] — [u32] byte length + raw bytes

    The framing around a payload ([u32] length, [u32] CRC-32) is the
    WAL layer's job (see {!Wal}); this module only produces and
    consumes payloads, so the codec round-trip property
    ([decode_record (encode_* x) = x]) is testable without touching
    the filesystem. *)

exception Corrupt of string
(** A payload that passed its CRC but does not parse — truncated
    field, unknown tag, impossible count.  Recovery maps this to a
    [Taupsm_error] with code [Durability]. *)

(** A decoded WAL record: a buffered storage event, the commit marker
    sealing every event since the previous marker into one atomic
    statement (the serial is the store-wide statement number), or an
    auxiliary named blob of engine state (e.g. strategy calibration)
    that rides along advisorily — it is applied on scan during
    recovery but carries no committed-prefix obligation. *)
type record =
  | Revent of Sqldb.Wal_hook.event
  | Rcommit of int
  | Raux of string * string

val encode_event : Sqldb.Wal_hook.event -> string
val encode_commit : serial:int -> string

val encode_aux : name:string -> blob:string -> string
(** Tag-10 auxiliary record: [name] identifies the consumer, [blob] is
    opaque to the store. *)

val decode_record : string -> record

(** A full-database snapshot: the last committed serial, the engine
    clock, view/routine definitions as re-parseable SQL, and every
    base and temporary table with its rows. *)
type snapshot = {
  serial : int;
  now : int;  (** engine "current date", days since 1970-01-01 *)
  ddl : string list;  (** catalog DDL in definition order *)
  base : (Sqldb.Schema.t * Sqldb.Value.t array list) list;
  temp : (Sqldb.Schema.t * Sqldb.Value.t array list) list;
  aux : (string * string) list;
      (** named opaque engine-state blobs; a tail extension, so an
          empty list keeps the pre-aux byte layout *)
}

val encode_snapshot : snapshot -> string
val decode_snapshot : string -> snapshot
