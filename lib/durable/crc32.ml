(* Table-driven CRC-32 (IEEE), one byte at a time.  OCaml's native ints
   are 63-bit on every platform we target, so the 32-bit arithmetic is
   done in plain ints with a final mask — no boxing, no Int32. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc :=
      t.((!crc lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let digest s = update 0 s 0 (String.length s)
