(* The injectable syscall layer for the durable stratum.

   Every byte the durable store moves to or from disk goes through this
   module: WAL appends, snapshot writes, rotation renames, recovery
   reads, backup copies.  Each operation consults [Fault.io_check] for
   its site first, so a seeded storage fault — ENOSPC, EIO, a short
   write, a dropped fsync, a flipped bit — lands on exactly the syscall
   the harness armed, and the crash-point byte budget
   ([Fault.crash_allowance]) still tears writes at byte granularity
   underneath.

   Faults are expressed in the syscall's own vocabulary: failures raise
   [Unix.Unix_error] exactly as the real call would, so the layers above
   cannot tell an injected ENOSPC from a genuine one and their
   degradation policy is honest. *)

let site_str site = Fault.io_site_name site

(* Deterministic bit flip: position derived from the armed salt and the
   buffer length, so a given seed corrupts a reproducible byte. *)
let flip_bit ~salt s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let pos = abs (salt land max_int) mod n in
    let bit = abs (salt lsr 7) mod 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

(* Write [s] under both the storage-fault point and the crash budget.

   Fault order matters: the fault decides what the filesystem does with
   this write (fail, truncate, corrupt); the crash budget then decides
   whether the process survives writing whatever the fault left of it.
   A short write persists a prefix and then raises — the caller's abort
   path must truncate it away.  A bit flip persists the whole buffer
   with one bit wrong and returns success: silent corruption that only
   CRC validation (recovery, scrub) can see. *)
let write fd ~site s =
  let s, fault =
    match Fault.io_check site with
    | None -> (s, None)
    | Some (Fault.Io_bit_flip, salt) -> (flip_bit ~salt s, None)
    | Some ((Fault.Io_enospc | Fault.Io_eio | Fault.Io_short_write), _) as f ->
        (s, f)
    | Some (Fault.Io_fsync_drop, _) ->
        (* an fsync fault armed at a write site: physically meaningless,
           treat as a no-op so a mis-armed point never passes silently
           as "write ok" *)
        (s, None)
  in
  let persist upto =
    let n = String.length s in
    let upto = min upto n in
    let k = Fault.crash_allowance upto in
    if k > 0 then write_all fd s 0 k;
    if k < upto then begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Fault.crash_now ~site:(site_str site)
    end
  in
  match fault with
  | None -> persist (String.length s)
  | Some (Fault.Io_enospc, _) ->
      raise (Unix.Unix_error (Unix.ENOSPC, "write", site_str site))
  | Some (Fault.Io_eio, _) ->
      raise (Unix.Unix_error (Unix.EIO, "write", site_str site))
  | Some (Fault.Io_short_write, salt) ->
      (* a prefix reaches the platter, then the device gives out *)
      let n = String.length s in
      let cut = if n <= 1 then 0 else abs (salt land max_int) mod n in
      persist cut;
      raise (Unix.Unix_error (Unix.ENOSPC, "write", site_str site))
  | Some (Fault.Io_fsync_drop, _) | Some (Fault.Io_bit_flip, _) ->
      assert false (* rewritten to None above *)

let fsync fd ~site =
  match Fault.io_check site with
  | None -> Unix.fsync fd
  | Some (Fault.Io_fsync_drop, _) ->
      (* the lying fsync: report success, sync nothing *)
      Fault.fsync_dropped ()
  | Some ((Fault.Io_eio | Fault.Io_enospc), _) ->
      raise (Unix.Unix_error (Unix.EIO, "fsync", site_str site))
  | Some ((Fault.Io_short_write | Fault.Io_bit_flip), _) -> Unix.fsync fd

let rename ~site src dst =
  match Fault.io_check site with
  | None -> Unix.rename src dst
  | Some (Fault.Io_enospc, _) ->
      raise (Unix.Unix_error (Unix.ENOSPC, "rename", site_str site))
  | Some (_, _) -> raise (Unix.Unix_error (Unix.EIO, "rename", site_str site))

let openfile ~site path flags perm =
  match Fault.io_check site with
  | None -> Unix.openfile path flags perm
  | Some (Fault.Io_enospc, _) ->
      raise (Unix.Unix_error (Unix.ENOSPC, "open", path))
  | Some (_, _) -> raise (Unix.Unix_error (Unix.EIO, "open", path))

(* Whole-file read on the recovery path.  An injected EIO models an
   unreadable sector; a bit flip models at-rest corruption surfacing on
   the way back — the CRC machinery downstream must catch it. *)
let read_file ~site path =
  (match Fault.io_check site with
  | None -> fun s -> s
  | Some (Fault.Io_bit_flip, salt) -> flip_bit ~salt
  | Some (_, _) -> raise (Unix.Unix_error (Unix.EIO, "read", path)))
  |> fun transform ->
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  transform s

(* Copy [len] bytes (whole file when [len] is omitted) from [src] to
   [dst] via a temp file + rename, fsynced, so a crash mid-copy never
   leaves a half-written file under the destination name — re-running
   the backup is always safe.  Goes through {!write} so backup I/O sits
   under the same fault and crash budget as everything else. *)
let copy_file ?len ~site src dst =
  let s = read_file ~site:Fault.Recovery_read src in
  let s =
    match len with
    | Some n when n < String.length s -> String.sub s 0 n
    | _ -> s
  in
  let tmp = dst ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  (try
     write fd ~site s;
     fsync fd ~site;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  rename ~site tmp dst;
  String.length s
