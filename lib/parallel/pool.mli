(** A fixed-size pool of OCaml 5 domains for data-parallel batches.

    The pool is created once and reused across many batches: worker
    domains park on a condition variable between submissions, so a
    batch costs two lock round-trips plus the work itself, not a domain
    spawn per task.

    Scheduling is chunked work-stealing over an index space: each
    worker owns a contiguous slice of the task array and claims chunks
    from it with a fetch-and-add cursor; a worker whose slice runs dry
    steals chunks from the other slices the same way.  The submitting
    domain participates as a worker, so [create ~jobs:1] spawns no
    domains at all and [map] degenerates to a plain serial loop.

    Exceptions are funnelled: the first task failure (lowest task index
    among the failures that actually ran) sets a cancellation flag —
    workers finish their current task and claim no more — and [map]
    re-raises that exception in the submitting domain once every worker
    has quiesced. *)

type t

val create : jobs:int -> t
(** [create ~jobs] starts a pool of [jobs] workers total: the caller's
    domain plus [jobs - 1] spawned domains.  Raises [Invalid_argument]
    if [jobs < 1]. *)

val size : t -> int
(** The worker count [jobs] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] applies [f] to every element, in parallel across
    the pool's workers, and returns the results in input order.  [f]
    must be safe to run concurrently with itself.  If any application
    raises, remaining unstarted tasks are cancelled and the exception
    is re-raised here after all workers stop.  Not reentrant: at most
    one [map] per pool at a time, from the creating domain. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool cannot be
    used afterwards. *)
