(* Parallel MAX execution: partition the constant-period table,
   evaluate each batch in a domain against a shared read-only snapshot
   of the engine, concatenate fragments in period order.  See
   parallel_max.mli for the equivalence and isolation argument. *)

module Catalog = Sqleval.Catalog
module Eval = Sqleval.Eval
module RS = Sqleval.Result_set
module Database = Sqldb.Database
module Table = Sqldb.Table
module Schema = Sqldb.Schema

(* [slice lst lo hi] is the sublist [lo, hi) of [lst]. *)
let slice lst lo hi =
  List.filteri (fun i _ -> i >= lo && i < hi) lst

let exec_serial ?tt_mode ~now cat q =
  match Eval.exec_toplevel ~now ?tt_mode cat (Sqlast.Ast.Squery q) with
  | Eval.Rows rs -> rs
  | _ -> invalid_arg "Parallel_max.exec_query: statement did not produce rows"

let exec_query ~pool ~cp_table ?tt_mode ~now cat (q : Sqlast.Ast.query) : RS.t =
  let cp = Database.find_table_exn cat.Catalog.db cp_table in
  let periods = Table.to_list cp in
  let nperiods = List.length periods in
  let nbatch = min (Pool.size pool) nperiods in
  if nbatch <= 1 then exec_serial ?tt_mode ~now cat q
  else begin
    let schema = Table.schema cp in
    (* Contiguous batches in the period table's insertion order: the
       serial result is period-major, so in-order concatenation of the
       fragments reproduces it exactly. *)
    let batches =
      Array.init nbatch (fun b ->
          slice periods (b * nperiods / nbatch) ((b + 1) * nperiods / nbatch))
    in
    (* One frozen snapshot, shared by every batch.  The main query is
       read-only (the stratum's parallelizable gate), so the domains can
       iterate the parent's row vectors directly through cheap read
       views instead of each paying a deep {!Catalog.copy}.  Before the
       fan-out, build the interval indexes the batches will stab — a
       view shares indexes already built on the original, so one serial
       build replaces one rebuild per domain — and pre-compile the main
       query into the shared plan store so every worker starts with a
       warm compiled entry. *)
    if cat.Catalog.options.Catalog.temporal_index then
      List.iter
        (fun t ->
          let ts = Table.schema t in
          if ts.Schema.temporal then
            ignore
              (Table.overlap_residuals t ~bi:(Schema.begin_index ts)
                 ~ei:(Schema.end_index ts));
          if ts.Schema.transaction then
            ignore
              (Table.overlap_residuals t ~bi:(Schema.tt_begin_index ts)
                 ~ei:(Schema.tt_end_index ts)))
        (Database.base_tables cat.Catalog.db);
    Compile.prewarm cat q;
    let run batch =
      (* Per-domain read view: shared row storage, fresh guard state
         and trace sink, no WAL hook, shared compiled-plan store, with
         the (view-local) period table re-bound to this batch.
         Re-binding a temp table with an unchanged schema does not bump
         the schema version, and a view preserves the generation and
         version counters, so plan tokens — and with them the shared
         compiled entries — stay valid in every domain. *)
      let dcat = Catalog.read_view cat in
      Database.add_temp_table dcat.Catalog.db
        (Table.of_rows schema (List.map Array.copy batch));
      let rs = exec_serial ?tt_mode ~now dcat q in
      (rs, dcat.Catalog.options.Catalog.guards.Guard.rows_used, Catalog.trace dcat)
    in
    let frags = Pool.map pool run batches in
    let cols = (let rs, _, _ = frags.(0) in rs.RS.cols) in
    let rows =
      List.concat_map (fun (rs, _, _) -> rs.RS.rows) (Array.to_list frags)
    in
    (* Aggregate the domains' resource use onto the parent guard (the
       stratum holds it entered for the whole statement): a row budget
       fires on the statement's total, as it would serially.  Each
       domain additionally enforced the deadline and budget on its own
       fresh guard while running. *)
    let g = cat.Catalog.options.Catalog.guards in
    Guard.charge_rows g (Array.fold_left (fun a (_, u, _) -> a + u) 0 frags);
    Guard.check_deadline g;
    let obs = Catalog.trace cat in
    if Trace.enabled obs then begin
      Trace.count obs "parallel.batches" nbatch;
      Trace.event obs "parallel-max"
        (Printf.sprintf "periods=%d batches=%d jobs=%d" nperiods nbatch
           (Pool.size pool));
      Trace.absorb obs ~name:"parallel.max"
        (List.map (fun (_, _, tr) -> tr) (Array.to_list frags))
    end;
    { RS.cols; rows }
  end
