(* A fixed-size domain pool with chunked work-stealing (see pool.mli).

   Concurrency structure: a batch is published under [m] by bumping
   [epoch]; parked workers re-check the epoch and pick up the current
   batch.  Within a batch, all coordination is lock-free — per-worker
   fetch-and-add cursors over slices of the index space — and the
   rendezvous at the end is the [pending] count under [m].  The mutex
   acquisitions on both sides of a batch double as the memory fences
   that publish task results back to the submitter. *)

type batch = {
  run : int -> unit;  (* execute task [i], recording result or error *)
  cursors : int Atomic.t array;  (* per-worker next index in its slice *)
  limits : int array;  (* per-worker slice end (exclusive) *)
  chunk : int;  (* indices claimed per fetch-and-add *)
  cancel : bool Atomic.t;
  mutable pending : int;  (* workers yet to finish this batch; under m *)
}

type t = {
  jobs : int;
  mutable domains : unit Domain.t array;  (* the [jobs - 1] spawned workers *)
  m : Mutex.t;
  cv : Condition.t;
  mutable current : batch option;
  mutable epoch : int;  (* bumped per published batch *)
  mutable stopped : bool;
}

let size t = t.jobs

(* Drain [b]'s tasks as worker [w] of [nw]: exhaust the own slice, then
   steal from the other slices in ring order.  Claiming [chunk]
   consecutive indices per atomic operation keeps contention low while
   still balancing batches whose tasks have skewed costs. *)
let work b w nw =
  let drain v =
    let limit = b.limits.(v) in
    let rec go () =
      if not (Atomic.get b.cancel) then begin
        let i = Atomic.fetch_and_add b.cursors.(v) b.chunk in
        if i < limit then begin
          let stop = min limit (i + b.chunk) in
          for j = i to stop - 1 do
            if not (Atomic.get b.cancel) then b.run j
          done;
          go ()
        end
      end
    in
    go ()
  in
  for d = 0 to nw - 1 do
    drain ((w + d) mod nw)
  done

(* A spawned worker: park until the epoch moves or the pool stops, work
   the published batch, check out via [pending], repeat. *)
let worker_loop t w =
  let rec loop last_epoch =
    Mutex.lock t.m;
    while (not t.stopped) && t.epoch = last_epoch do
      Condition.wait t.cv t.m
    done;
    if t.stopped then Mutex.unlock t.m
    else begin
      let b = Option.get t.current in
      let e = t.epoch in
      Mutex.unlock t.m;
      work b w t.jobs;
      Mutex.lock t.m;
      b.pending <- b.pending - 1;
      if b.pending = 0 then Condition.broadcast t.cv;
      Mutex.unlock t.m;
      loop e
    end
  in
  loop 0

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      domains = [||];
      m = Mutex.create ();
      cv = Condition.create ();
      current = None;
      epoch = 0;
      stopped = false;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.m;
  let first = not t.stopped in
  t.stopped <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  if first then Array.iter Domain.join t.domains

let map (type b) t f (items : _ array) : b array =
  if t.stopped then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results : b option array = Array.make n None in
    (* First failure wins; among concurrent failures the lowest task
       index is kept so the funnelled exception is deterministic. *)
    let error : (int * exn) option Atomic.t = Atomic.make None in
    let cancel = Atomic.make false in
    let run i =
      match f items.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          let rec record () =
            match Atomic.get error with
            | Some (j, _) when j <= i -> ()
            | cur ->
                if not (Atomic.compare_and_set error cur (Some (i, e))) then
                  record ()
          in
          record ();
          Atomic.set cancel true
    in
    let nw = t.jobs in
    let cursors = Array.init nw (fun w -> Atomic.make (w * n / nw)) in
    let limits = Array.init nw (fun w -> (w + 1) * n / nw) in
    let chunk = max 1 (n / (nw * 8)) in
    let b = { run; cursors; limits; chunk; cancel; pending = nw } in
    Mutex.lock t.m;
    t.current <- Some b;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    (* The submitter is worker 0. *)
    work b 0 nw;
    Mutex.lock t.m;
    b.pending <- b.pending - 1;
    while b.pending > 0 do
      Condition.wait t.cv t.m
    done;
    t.current <- None;
    Mutex.unlock t.m;
    (match Atomic.get error with Some (_, e) -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
