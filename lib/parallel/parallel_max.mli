(** Parallel evaluation of a MAX-transformed sequenced query.

    The MAX strategy (paper §V) evaluates the rewritten main query once
    per constant period by cross-joining it with the materialized
    period table; the per-period evaluations are independent (snapshot
    reducibility), and the period table is the {e outermost} loop of
    the join, so the serial result is period-major.  This executor
    exploits both facts: it partitions the period table into contiguous
    per-domain batches, runs the unchanged main query in each domain
    against a private engine snapshot whose period table holds only
    that batch, and concatenates the per-batch fragments in batch
    order — bit-identical to the serial result.

    Isolation per domain comes from {!Sqleval.Catalog.read_view}: every
    base table's row vector is shared read-only (the main query cannot
    mutate it — see the parallelizable gate below), while everything a
    domain writes is private — temp-table bindings, undo journal, trace
    sink, {!Guard} running state — and no {!Sqldb.Wal_hook} is attached,
    so domains emit no durability events.  The generation and schema
    version survive into the view, so the parent's plan tokens (and the
    compiled-plan store the views share) remain valid; the parent
    additionally pre-builds the interval indexes and pre-compiles the
    main query before the fan-out so workers start warm instead of each
    rebuilding cold caches.  After the merge the domains' traces are
    absorbed into the parent's sink deterministically and their row
    consumption is charged against the parent's guard, so an aggregate
    row budget still fires.

    The caller (the stratum) is responsible for ensuring the statement
    is parallelizable: a plain [SELECT] main with the period table
    outermost, no ORDER BY / OFFSET / FETCH FIRST, and no reachable
    routine with side effects. *)

val exec_query :
  pool:Pool.t ->
  cp_table:string ->
  ?tt_mode:Sqleval.Eval.tt_mode ->
  now:Sqldb.Date.t ->
  Sqleval.Catalog.t ->
  Sqlast.Ast.query ->
  Sqleval.Result_set.t
(** [exec_query ~pool ~cp_table ~now cat q] runs the transformed main
    query [q] with the constant-period table [cp_table] partitioned
    across the pool's domains.  Falls back to a plain serial evaluation
    when the pool has one worker or there are fewer than two periods.
    The first domain failure cancels the remaining batches and is
    re-raised here; the parent database is never touched by the
    domains, so a failed run leaves no trace in it. *)
