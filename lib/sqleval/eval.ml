(* The evaluator: expressions (SQL three-valued logic), queries (nested-
   loop join with predicate pushdown and opportunistic hash joins),
   DML, and the PSM interpreter (control statements, cursors, stored
   functions and procedures, table-valued functions).

   Everything is mutually recursive by nature (expressions contain
   subqueries, queries call functions, functions contain statements), so
   it lives in one module. *)

open Sqlast.Ast
module Value = Sqldb.Value
module Date = Sqldb.Date
module Schema = Sqldb.Schema
module Table = Sqldb.Table
module Database = Sqldb.Database

exception Sql_error of string

let sql_error fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

(* One FROM item bound to its current row during join iteration. *)
type binding = {
  b_alias : string;  (* lowercase *)
  b_cols : string array;  (* lowercase column names *)
  mutable b_row : Value.t array;
}

(* A base-table FROM item.  Keeping the table handle (rather than an
   eagerly materialized row list) lets the join loop route period-overlap
   conjuncts through the table's interval index; [sc_rows] is the
   conventional transaction-time-filtered full scan, forced only when no
   index path applies, and [sc_tt_filter] is the exact transaction-time
   predicate re-applied to index candidates. *)
type scan = {
  sc_table : Table.t;
  sc_rows : Value.t array list Lazy.t;
  sc_tt_filter : (Value.t array -> bool) option;
}

type cursor_state = {
  c_query : query;
  mutable c_rows : Result_set.t option;  (* Some once opened *)
  mutable c_pos : int;
}

type scope = {
  vars : (string, Value.t ref) Hashtbl.t;
  cursors : (string, cursor_state) Hashtbl.t;
  mutable handler : stmt option;  (* NOT FOUND continue handler *)
}

(* The transaction-time reading mode of a statement: the current
   database state (default), the state AS OF a past instant, or the raw
   timestamped rows (nonsequenced).  Transaction time is system-
   maintained, so this is an execution-environment concern rather than
   a source-to-source one. *)
type tt_mode = [ `Current | `Asof of Date.t | `All ]

type env = {
  cat : Catalog.t;
  now : Date.t;
  tt_mode : tt_mode;
  mutable frames : binding list list;  (* innermost query first *)
  mutable scopes : scope list;  (* innermost block first; [] at top level *)
  depth : int ref;  (* shared routine-recursion guard *)
  (* Per-statement memo cache for table-valued function invocations:
     key = (catalog generation, function name, argument values).  The
     generation component makes entries self-invalidating: a CALL that
     executes DDL redefining a routine mid-statement bumps the
     generation, so later invocations cannot be served rows computed
     under the old definition. *)
  tf_cache : (int * string * Value.t list, Result_set.t) Hashtbl.t;
  mutable calls : int;  (* statistics: routine invocations *)
  guard : Guard.t;  (* the catalog's resource guard, bound once *)
  ext_state : Catalog.ext option ref;
      (* opaque per-statement scratch slot for the plan-compilation
         layer (lib/compile): caches per-plan scan rows and hash
         indexes across the many SELECT evaluations of one top-level
         statement.  One shared ref cell, so routine child environments
         (which copy the record) reuse the same cache. *)
}

let new_scope () =
  { vars = Hashtbl.create 8; cursors = Hashtbl.create 4; handler = None }

let create_env ?(now = Date.of_ymd ~y:2011 ~m:1 ~d:1) ?(tt_mode = `Current) cat
    =
  (* Sync the trace sink's enabled flag to [options.observe] once per
     statement; the hot paths below then test [Trace.enabled] directly. *)
  ignore (Catalog.trace cat);
  {
    cat;
    now;
    tt_mode;
    frames = [];
    scopes = [];
    depth = ref 0;
    tf_cache = Hashtbl.create 64;
    calls = 0;
    guard = cat.Catalog.options.Catalog.guards;
    ext_state = ref None;
  }

(* A child environment for a routine body: fresh frames and scopes so the
   routine cannot see the caller's columns or variables. *)
let routine_env env =
  { env with frames = []; scopes = [ new_scope () ] }

let find_var env name =
  let name = String.lowercase_ascii name in
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s.vars name with
        | Some r -> Some r
        | None -> go rest)
  in
  go env.scopes

let declare_var env name v =
  match env.scopes with
  | [] -> sql_error "DECLARE outside of a routine body"
  | s :: _ -> Hashtbl.replace s.vars (String.lowercase_ascii name) (ref v)

let find_cursor env name =
  let name = String.lowercase_ascii name in
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s.cursors name with
        | Some c -> Some c
        | None -> go rest)
  in
  go env.scopes

let find_handler env =
  let rec go = function
    | [] -> None
    | s :: rest -> ( match s.handler with Some h -> Some h | None -> go rest)
  in
  go env.scopes

(* Column lookup across the frame stack: innermost frame first; within a
   frame an unqualified name must be unambiguous.  Falls back to PSM
   variables, so a query inside a routine can reference its parameters. *)
let lookup_col env qualifier name =
  let lname = String.lowercase_ascii name in
  let in_binding (b : binding) =
    let n = Array.length b.b_cols in
    let rec go i =
      if i >= n then None else if b.b_cols.(i) = lname then Some i else go (i + 1)
    in
    go 0
  in
  match qualifier with
  | Some q ->
      let lq = String.lowercase_ascii q in
      let rec search = function
        | [] -> None
        | frame :: rest -> (
            match List.find_opt (fun b -> b.b_alias = lq) frame with
            | Some b -> (
                match in_binding b with
                | Some i -> Some b.b_row.(i)
                | None -> sql_error "no column %s in %s" name q)
            | None -> search rest)
      in
      search env.frames
  | None ->
      let rec search = function
        | [] -> None
        | frame :: rest -> (
            let hits =
              List.filter_map
                (fun b -> Option.map (fun i -> (b, i)) (in_binding b))
                frame
            in
            match hits with
            | [ (b, i) ] -> Some b.b_row.(i)
            | [] -> search rest
            | _ -> sql_error "ambiguous column reference %s" name)
      in
      search env.frames

(* ------------------------------------------------------------------ *)
(* Three-valued logic helpers                                          *)
(* ------------------------------------------------------------------ *)

let truthy = function Value.Bool true -> true | _ -> false

let v_and a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool x, Value.Bool y -> Value.Bool (x && y)
  | _ -> sql_error "AND applied to non-boolean"

let v_or a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool x, Value.Bool y -> Value.Bool (x || y)
  | _ -> sql_error "OR applied to non-boolean"

let v_not = function
  | Value.Null -> Value.Null
  | Value.Bool b -> Value.Bool (not b)
  | _ -> sql_error "NOT applied to non-boolean"

let v_compare op a b =
  match Value.compare_sql a b with
  | None -> Value.Null
  | Some c ->
      let r =
        match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false
      in
      Value.Bool r

let v_arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Date d, Value.Int n -> (
      match op with
      | Add -> Value.Date (Date.add_days d n)
      | Sub -> Value.Date (Date.add_days d (-n))
      | _ -> sql_error "unsupported arithmetic on dates")
  | Value.Int n, Value.Date d when op = Add -> Value.Date (Date.add_days d n)
  | Value.Date d1, Value.Date d2 when op = Sub -> Value.Int (d1 - d2)
  | Value.Int x, Value.Int y -> (
      match op with
      | Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div ->
          if y = 0 then sql_error "division by zero" else Value.Int (x / y)
      | Mod ->
          if y = 0 then sql_error "division by zero" else Value.Int (x mod y)
      | _ -> assert false)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> (
      let x = Value.to_float_exn a and y = Value.to_float_exn b in
      match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div ->
          if y = 0. then sql_error "division by zero" else Value.Float (x /. y)
      | Mod -> Value.Float (Float.rem x y)
      | _ -> assert false)
  | _ ->
      sql_error "arithmetic on non-numeric values %s, %s" (Value.to_string a)
        (Value.to_string b)

let v_concat a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Str (Value.to_string a ^ Value.to_string b)

(* ------------------------------------------------------------------ *)
(* Group context for aggregate evaluation                              *)
(* ------------------------------------------------------------------ *)

type group_ctx = {
  g_bindings : binding list;
  g_rows : Value.t array array list;  (* member rows: one sub-array per binding *)
}

let set_bindings bindings snapshot =
  List.iteri (fun i b -> b.b_row <- snapshot.(i)) bindings

(* ------------------------------------------------------------------ *)
(* Control-flow exceptions for PSM                                     *)
(* ------------------------------------------------------------------ *)

exception Return_value of Value.t
exception Return_table of Result_set.t
exception Leave_loop of string
exception Iterate_loop of string
exception Not_found_condition

(* Control-flow exceptions are success paths: the savepoint machinery
   below must let them pass without rolling anything back. *)
let control_exn = function
  | Return_value _ | Return_table _ | Leave_loop _ | Iterate_loop _
  | Not_found_condition ->
      true
  | _ -> false

(* Run [f] as an atomic unit when the guard's atomic switch is on.  The
   outermost call (per engine) activates the database undo journal and
   commits or rolls back the whole unit; a nested call — a routine body
   inside an already-atomic statement — degrades to a savepoint that
   rolls back only the routine's own effects on failure. *)
let atomically env f =
  if not env.guard.Guard.atomic then f ()
  else begin
    let db = env.cat.Catalog.db in
    let j = Database.undo db in
    if Undo_log.is_active j then begin
      let sp = Undo_log.savepoint j in
      (* WAL savepoint in step with the undo one: the raise below can
         be swallowed upstream (try_materialize's lateral-subquery
         probe) with the outer statement still committing, so the
         rolled-back scope's buffered events must go too. *)
      let wsp = Database.wal_savepoint db in
      try f ()
      with e when not (control_exn e) ->
        Undo_log.rollback_to j sp;
        Database.wal_rollback_to db wsp;
        raise e
    end
    else begin
      Undo_log.activate j;
      (* Durability decides first: only once the WAL has accepted the
         commit group may the undo journal be discarded.  If the commit
         fails (ENOSPC mid-append — the store erases the half-appended
         group and stays live), the journal rolls the in-memory effects
         back too, so disk and memory agree the statement never
         happened. *)
      let commit_then fin =
        match Database.wal_commit db with
        | () ->
            Undo_log.deactivate j;
            Undo_log.clear j;
            fin ()
        | exception ce ->
            Undo_log.rollback_to j (Undo_log.top j);
            Undo_log.deactivate j;
            Undo_log.clear j;
            raise ce
      in
      match f () with
      | r -> commit_then (fun () -> r)
      | exception e when control_exn e ->
          (* control-flow exceptions are success paths: their effects
             survive in memory, so they must also reach the WAL *)
          commit_then (fun () -> raise e)
      | exception e ->
          Undo_log.rollback_to j (Undo_log.top j);
          Undo_log.deactivate j;
          Undo_log.clear j;
          Database.wal_abort db;
          raise e
    end
  end

type exec_result = Rows of Result_set.t | Affected of int | Unit

(* ------------------------------------------------------------------ *)
(* Plan-compilation hook                                               *)
(* ------------------------------------------------------------------ *)

(* Set by lib/compile (which depends on this library) at stratum
   installation.  When [options.compile] is on, {!eval_select} consults
   the hook first: [Some rs] means a compiled closure covered the whole
   SELECT — bit-identical to the interpreter by construction — and
   [None] falls through to the interpreter.  The compiled/interpreted
   counters make coverage visible per query in EXPLAIN. *)
let select_compiler : (env -> select -> Result_set.t option) ref =
  ref (fun _ _ -> None)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval_expr env ?group (e : expr) : Value.t =
  match e with
  | Lit v -> v
  | Col (q, name) -> (
      match lookup_col env q name with
      | Some v -> v
      | None -> (
          match (q, find_var env name) with
          | None, Some r -> !r
          | _ ->
              sql_error "unknown column or variable %s%s"
                (match q with Some q -> q ^ "." | None -> "")
                name))
  | Binop (And, a, b) -> v_and (eval_expr env ?group a) (eval_expr env ?group b)
  | Binop (Or, a, b) -> v_or (eval_expr env ?group a) (eval_expr env ?group b)
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
      v_compare op (eval_expr env ?group a) (eval_expr env ?group b)
  | Binop (Concat, a, b) ->
      v_concat (eval_expr env ?group a) (eval_expr env ?group b)
  | Binop (op, a, b) ->
      v_arith op (eval_expr env ?group a) (eval_expr env ?group b)
  | Unop (Not, a) -> v_not (eval_expr env ?group a)
  | Unop (Neg, a) -> (
      match eval_expr env ?group a with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> sql_error "cannot negate %s" (Value.to_string v))
  | Fun_call (name, args) ->
      let argv = List.map (eval_expr env ?group) args in
      eval_fun_call env name argv
  | Agg (af, distinct, operand) -> (
      match group with
      | None -> sql_error "aggregate outside of a grouped query"
      | Some g -> eval_aggregate env g af distinct operand)
  | Cast (e, ty) -> Value.cast ~ty (eval_expr env ?group e)
  | Case c -> eval_case env ?group c
  | Exists q ->
      let rs = eval_query env q in
      Value.Bool (rs.Result_set.rows <> [])
  | In_pred (e, src, neg) -> (
      let v = eval_expr env ?group e in
      let members =
        match src with
        | In_list es -> List.map (eval_expr env ?group) es
        | In_query q ->
            let rs = eval_query env q in
            if Result_set.arity rs <> 1 then
              sql_error "IN subquery must return one column";
            List.map (fun r -> r.(0)) rs.Result_set.rows
      in
      let result =
        if Value.is_null v then Value.Null
        else
          let any_null = List.exists Value.is_null members in
          if List.exists (fun m -> (not (Value.is_null m)) && Value.equal m v) members
          then Value.Bool true
          else if any_null then Value.Null
          else Value.Bool false
      in
      if neg then v_not result else result)
  | Between (e, lo, hi, neg) ->
      let v = eval_expr env ?group e in
      let l = eval_expr env ?group lo and h = eval_expr env ?group hi in
      let r = v_and (v_compare Le l v) (v_compare Le v h) in
      if neg then v_not r else r
  | Is_null (e, neg) ->
      let isnull = Value.is_null (eval_expr env ?group e) in
      Value.Bool (if neg then not isnull else isnull)
  | Like (e, pat, neg) -> (
      let v = eval_expr env ?group e and p = eval_expr env ?group pat in
      match (v, p) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | _ ->
          let m =
            Builtins.like_match ~pattern:(Value.to_str_exn p) (Value.to_str_exn v)
          in
          Value.Bool (if neg then not m else m))
  | Scalar_subquery q -> (
      let rs = eval_query env q in
      if Result_set.arity rs <> 1 then
        sql_error "scalar subquery must return one column";
      match rs.Result_set.rows with
      | [] -> Value.Null
      | [ r ] -> r.(0)
      | _ -> sql_error "scalar subquery returned more than one row")

and eval_case env ?group c =
  match c.case_operand with
  | Some op ->
      let v = eval_expr env ?group op in
      let rec go = function
        | [] -> (
            match c.case_else with
            | Some e -> eval_expr env ?group e
            | None -> Value.Null)
        | (w, t) :: rest ->
            if truthy (v_compare Eq v (eval_expr env ?group w)) then
              eval_expr env ?group t
            else go rest
      in
      go c.case_branches
  | None ->
      let rec go = function
        | [] -> (
            match c.case_else with
            | Some e -> eval_expr env ?group e
            | None -> Value.Null)
        | (w, t) :: rest ->
            if truthy (eval_expr env ?group w) then eval_expr env ?group t
            else go rest
      in
      go c.case_branches

and eval_aggregate env g af distinct operand =
  match af with
  | Count_star -> Value.Int (List.length g.g_rows)
  | _ ->
      let operand =
        match operand with
        | Some e -> e
        | None -> sql_error "aggregate needs an operand"
      in
      (* Evaluate the operand for each member row; NULLs are skipped. *)
      let saved = List.map (fun b -> b.b_row) g.g_bindings in
      let values = ref [] in
      List.iter
        (fun snapshot ->
          set_bindings g.g_bindings snapshot;
          let v = eval_expr env operand in
          if not (Value.is_null v) then values := v :: !values)
        g.g_rows;
      List.iteri (fun i b -> b.b_row <- List.nth saved i) g.g_bindings;
      let values =
        if distinct then List.sort_uniq Value.compare_total !values
        else List.rev !values
      in
      if values = [] then
        match af with Count -> Value.Int 0 | _ -> Value.Null
      else begin
        match af with
        | Count -> Value.Int (List.length values)
        | Min ->
            List.fold_left
              (fun acc v -> if Value.compare_total v acc < 0 then v else acc)
              (List.hd values) values
        | Max ->
            List.fold_left
              (fun acc v -> if Value.compare_total v acc > 0 then v else acc)
              (List.hd values) values
        | Sum | Avg -> (
            let all_int =
              List.for_all (function Value.Int _ -> true | _ -> false) values
            in
            if all_int && af = Sum then
              Value.Int
                (List.fold_left (fun acc v -> acc + Value.to_int_exn v) 0 values)
            else
              let total =
                List.fold_left (fun acc v -> acc +. Value.to_float_exn v) 0. values
              in
              match af with
              | Sum -> Value.Float total
              | _ -> Value.Float (total /. float_of_int (List.length values)))
        | Count_star -> assert false
      end

and eval_fun_call env name argv : Value.t =
  if Builtins.is_builtin name then Builtins.call ~now:env.now name argv
  else
    match Catalog.find_function env.cat name with
    | Some r -> (
        match r.r_returns with
        | Some (Ret_scalar _) -> invoke_scalar_function env r argv
        | Some (Ret_table _) ->
            sql_error "table function %s used in a scalar context" name
        | None -> assert false)
    | None -> sql_error "unknown function %s" name

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

and eval_query env (q : query) : Result_set.t =
  match q with
  | Select s -> eval_select env s
  | Union (all, a, b) ->
      let ra = eval_query env a and rb = eval_query env b in
      let rows = ra.Result_set.rows @ rb.Result_set.rows in
      let rows = if all then rows else dedupe_rows rows in
      { Result_set.cols = ra.Result_set.cols; rows }
  | Except (all, a, b) ->
      let ra = eval_query env a and rb = eval_query env b in
      let rows =
        if all then
          (* Bag difference. *)
          let remaining = ref rb.Result_set.rows in
          List.filter
            (fun r ->
              match
                List.partition (fun r' -> row_equal r r') !remaining
              with
              | [], _ -> true
              | _ :: dropped_rest, others ->
                  remaining := dropped_rest @ others;
                  false)
            ra.Result_set.rows
        else
          dedupe_rows
            (List.filter
               (fun r ->
                 not (List.exists (fun r' -> row_equal r r') rb.Result_set.rows))
               ra.Result_set.rows)
      in
      { Result_set.cols = ra.Result_set.cols; rows }
  | Intersect (all, a, b) ->
      let ra = eval_query env a and rb = eval_query env b in
      let rows =
        if all then begin
          let remaining = ref rb.Result_set.rows in
          List.filter
            (fun r ->
              match List.partition (fun r' -> row_equal r r') !remaining with
              | [], _ -> false
              | _ :: kept_rest, others ->
                  remaining := kept_rest @ others;
                  true)
            ra.Result_set.rows
        end
        else
          dedupe_rows
            (List.filter
               (fun r -> List.exists (fun r' -> row_equal r r') rb.Result_set.rows)
               ra.Result_set.rows)
      in
      { Result_set.cols = ra.Result_set.cols; rows }

and row_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Value.equal a b

and dedupe_rows rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let key = Array.to_list r in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rows

(* Resolve a FROM item into (alias, columns, row source).

   A derived table (or view) whose query references a sibling FROM item
   cannot be materialized up front; when its evaluation fails on an
   unknown column we defer it to join time (`Lateral_sub`), giving it
   quasi-LATERAL semantics.  Genuine unknown-column errors re-raise
   identically during the join. *)
and eval_table_ref env (tr : table_ref) :
    string
    * string array
    * [ `Rows of Value.t array list
      | `Scan of scan
      | `Lateral of expr list * string
      | `Lateral_sub of query ]
    =
  let try_materialize alias q =
    match eval_query env q with
    | rs ->
        ( alias,
          Array.of_list (List.map String.lowercase_ascii rs.Result_set.cols),
          `Rows rs.Result_set.rows )
    | exception Sql_error msg
      when String.length msg >= 14 && String.sub msg 0 14 = "unknown column" ->
        (* Column names must still be known up front: take them from a
           probe evaluation against empty bindings is impossible, so
           derive them from the query's projection. *)
        ( alias,
          Array.of_list (List.map String.lowercase_ascii (query_columns env q)),
          `Lateral_sub q )
  in
  match tr with
  | Tref (name, alias) -> (
      let alias = Option.value alias ~default:name in
      match Database.find_table env.cat.Catalog.db name with
      | Some t ->
          let schema = Table.schema t in
          let cols =
            Array.of_list
              (List.map
                 (fun c -> String.lowercase_ascii c.Schema.col_name)
                 schema.Schema.columns)
          in
          (* Transaction-time filtering is system-enforced at the scan.
             When the interval index is enabled, the AS OF / CURRENT
             filters become stabbing queries on the (tt_begin, tt_end)
             pair; candidates are still re-checked by the exact
             predicate, so results match the filtered full scan. *)
          let tt_filter =
            if not schema.Schema.transaction then None
            else
              let bi = Schema.tt_begin_index schema
              and ei = Schema.tt_end_index schema in
              match env.tt_mode with
              | `All -> None
              | `Current ->
                  Some
                    (fun (r : Value.t array) ->
                      Value.to_date_exn r.(ei) = Date.forever)
              | `Asof d ->
                  Some
                    (fun (r : Value.t array) ->
                      Value.to_date_exn r.(bi) <= d
                      && d < Value.to_date_exn r.(ei))
          in
          let sc_rows =
            lazy
              (match tt_filter with
              | None -> Table.to_list t
              | Some p ->
                  if env.cat.Catalog.options.Catalog.temporal_index then
                    let bi = Schema.tt_begin_index schema
                    and ei = Schema.tt_end_index schema in
                    let begin_, end_ =
                      match env.tt_mode with
                      | `Asof d -> (d, d + 1)
                      | _ -> (Date.forever - 1, max_int)
                    in
                    List.filter p (Table.overlapping t ~bi ~ei ~begin_ ~end_)
                  else List.filter p (Table.to_list t))
          in
          (alias, cols, `Scan { sc_table = t; sc_rows; sc_tt_filter = tt_filter })
      | None -> (
          match Catalog.find_view env.cat name with
          | Some q -> try_materialize alias q
          | None -> sql_error "unknown table or view %s" name))
  | Tsub (q, alias) -> try_materialize alias q
  | Tjoin _ ->
      (* Joins are flattened by eval_select before sources are resolved. *)
      assert false
  | Tfun (fname, args, alias) ->
      let cols =
        match Catalog.find_native_table_fun env.cat fname with
        | Some ntf ->
            Array.of_list (List.map String.lowercase_ascii ntf.Catalog.ntf_cols)
        | None -> (
            match Catalog.find_function env.cat fname with
            | Some { r_returns = Some (Ret_table cds); _ } ->
                Array.of_list
                  (List.map (fun cd -> String.lowercase_ascii cd.cd_name) cds)
            | Some _ -> sql_error "%s is not a table function" fname
            | None -> sql_error "unknown table function %s" fname)
      in
      (alias, cols, `Lateral (args, fname))

(* The output column names of a query, statically (used when a lateral
   derived table cannot be materialized up front).  Star projections of
   base tables are resolvable; anything else must use explicit names. *)
and query_columns env (q : query) : string list =
  match q with
  | Select s ->
      List.concat_map
        (function
          | Proj_expr (_, Some a) -> [ a ]
          | Proj_expr (Col (_, c), None) -> [ c ]
          | Proj_expr (_, None) -> [ "?column?" ]
          | Star ->
              let rec cols_of = function
                | Tref (name, _) -> (
                    match Database.find_table env.cat.Catalog.db name with
                    | Some t ->
                        List.map
                          (fun c -> c.Schema.col_name)
                          (Table.schema t).Schema.columns
                    | None -> sql_error "cannot infer columns of %s" name)
                | Tjoin (l, _, r, _) -> cols_of l @ cols_of r
                | _ ->
                    sql_error
                      "cannot infer the columns of a lateral derived table \
                       with SELECT *"
              in
              List.concat_map cols_of s.from
          | Qual_star _ ->
              sql_error
                "cannot infer the columns of a lateral derived table with \
                 qualified *")
        s.proj
  | Union (_, a, _) | Except (_, a, _) | Intersect (_, a, _) ->
      query_columns env a

(* Invoke a table function, memoizing on argument values for the duration
   of the enclosing top-level statement.  Native table functions are not
   memoized: they may read mutable temporary state (e.g. the stratum's
   runtime constant-period computation over variable tables). *)
and invoke_table_function env fname argv : Result_set.t =
  match Catalog.find_native_table_fun env.cat fname with
  | Some ntf -> ntf.Catalog.ntf_fn env.cat argv
  | None -> (
      let memoize = env.cat.Catalog.options.Catalog.memoize_table_functions in
      (* Keyed on the catalog generation so mid-statement DDL that
         redefines a routine orphans every entry computed under the old
         definitions instead of serving stale rows. *)
      let key =
        (env.cat.Catalog.generation, String.lowercase_ascii fname, argv)
      in
      match if memoize then Hashtbl.find_opt env.tf_cache key else None with
      | Some rs -> rs
      | None ->
          let r =
            match Catalog.find_function env.cat fname with
            | Some r -> r
            | None -> sql_error "unknown table function %s" fname
          in
          let rs = invoke_routine_table env r argv in
          if memoize then Hashtbl.add env.tf_cache key rs;
          rs)

and eval_select env (s : select) : Result_set.t =
  if not env.cat.Catalog.options.Catalog.compile then eval_select_interp env s
  else
    match !select_compiler env s with
    | Some rs ->
        Trace.count env.cat.Catalog.obs "compile.compiled" 1;
        rs
    | None ->
        Trace.count env.cat.Catalog.obs "compile.interpreted" 1;
        eval_select_interp env s

and eval_select_interp env (s : select) : Result_set.t =
  (* Flatten explicit joins: inner-join ON conditions become ordinary
     conjuncts; a left join marks its right side with the ON condition
     so the join loop can null-extend unmatched combinations. *)
  let rec flatten_from (tr : table_ref) :
      (table_ref * expr option (* left-join ON *)) list * expr list =
    match tr with
    | Tjoin (l, Jinner, r, on) ->
        let ul, cl = flatten_from l in
        let ur, cr = flatten_from r in
        (ul @ ur, cl @ cr @ [ on ])
    | Tjoin (l, Jleft, r, on) ->
        let ul, cl = flatten_from l in
        (match r with
        | Tjoin _ ->
            sql_error "a nested join on the right of a LEFT JOIN is not supported"
        | _ -> ());
        (ul @ [ (r, Some on) ], cl)
    | _ -> ([ (tr, None) ], [])
  in
  let flat_from, join_conjuncts =
    List.fold_left
      (fun (us, cs) tr ->
        let u, c = flatten_from tr in
        (us @ u, cs @ c))
      ([], []) s.from
  in
  let sources =
    List.map (fun (tr, on) -> (eval_table_ref env tr, on)) flat_from
  in
  let bindings =
    List.map
      (fun (((alias, cols, _), _) : _ * expr option) ->
        { b_alias = String.lowercase_ascii alias; b_cols = cols; b_row = [||] })
      sources
  in
  let n = List.length sources in
  let bindings_arr = Array.of_list bindings in
  let sources_arr = Array.of_list sources in
  let local_aliases = List.map (fun b -> b.b_alias) bindings in
  (* Split WHERE into conjuncts and assign each to the earliest join level
     at which all its locally-referenced aliases are bound. *)
  let conjuncts =
    let rec split = function
      | Binop (And, a, b) -> split a @ split b
      | e -> [ e ]
    in
    join_conjuncts
    @ (match s.where with None -> [] | Some w -> split w)
  in
  let alias_level =
    List.mapi (fun i a -> (a, i)) local_aliases
  in
  (* Which local aliases does an expression reference?  An unqualified
     column counts for the first local source that has the column. *)
  let rec expr_aliases acc (e : expr) =
    match e with
    | Col (Some q, _) -> (
        let lq = String.lowercase_ascii q in
        match List.assoc_opt lq alias_level with
        | Some lvl -> lvl :: acc
        | None -> acc)
    | Col (None, c) -> (
        let lc = String.lowercase_ascii c in
        let found =
          List.find_opt
            (fun b -> Array.exists (fun col -> col = lc) b.b_cols)
            bindings
        in
        match found with
        | Some b -> (List.assoc b.b_alias alias_level) :: acc
        | None -> acc)
    | _ ->
        let acc =
          fold_expr_queries
            (fun acc q ->
              (* Subqueries may correlate with local aliases. *)
              List.fold_left
                (fun acc sel ->
                  let refs = collect_col_refs sel in
                  List.fold_left
                    (fun acc r ->
                      match r with
                      | Some q, _ -> (
                          match
                            List.assoc_opt (String.lowercase_ascii q) alias_level
                          with
                          | Some lvl -> lvl :: acc
                          | None -> acc)
                      | None, _ -> acc)
                    acc refs)
                acc (query_selects q))
            acc e
        in
        shallow_fold_expr expr_aliases acc e
  and shallow_fold_expr f acc e =
    match e with
    | Lit _ | Col _ -> acc
    | Binop (_, a, b) -> f (f acc a) b
    | Unop (_, a) | Cast (a, _) | Is_null (a, _) -> f acc a
    | Fun_call (_, args) -> List.fold_left f acc args
    | Agg (_, _, Some a) -> f acc a
    | Agg (_, _, None) -> acc
    | Case c ->
        let acc = match c.case_operand with Some e -> f acc e | None -> acc in
        let acc =
          List.fold_left (fun acc (w, t) -> f (f acc w) t) acc c.case_branches
        in
        (match c.case_else with Some e -> f acc e | None -> acc)
    | Exists _ | Scalar_subquery _ -> acc
    | In_pred (e, In_list es, _) -> List.fold_left f (f acc e) es
    | In_pred (e, In_query _, _) -> f acc e
    | Between (a, b, c, _) -> f (f (f acc a) b) c
    | Like (a, b, _) -> f (f acc a) b
  in
  let conjunct_level e =
    match expr_aliases [] e with [] -> 0 | ls -> List.fold_left max 0 ls
  in
  let has_fun_call e =
    fold_expr_funcalls
      (fun acc name _ -> acc || not (Builtins.is_builtin name))
      false e
  in
  let level_conjuncts =
    Array.make (max n 1) ([] : expr list)
  in
  List.iter
    (fun c ->
      let lvl = conjunct_level c in
      level_conjuncts.(lvl) <- c :: level_conjuncts.(lvl))
    conjuncts;
  (* Cheap conjuncts (no stored-function calls) run first at each level. *)
  Array.iteri
    (fun i cs ->
      let cheap, costly = List.partition (fun c -> not (has_fun_call c)) cs in
      level_conjuncts.(i) <- cheap @ costly)
    level_conjuncts;
  (* Which (lowercase) column of source [i] does [e] name, if any?  An
     unqualified column must belong to source i and no other source. *)
  let col_of_source i =
    let b = bindings_arr.(i) in
    function
    | Col (Some q, c) when String.lowercase_ascii q = b.b_alias ->
        let lc = String.lowercase_ascii c in
        if Array.exists (fun col -> col = lc) b.b_cols then Some lc else None
    | Col (None, c) ->
        let lc = String.lowercase_ascii c in
        if
          Array.exists (fun col -> col = lc) b.b_cols
          && not
               (List.exists
                  (fun b' ->
                    b'.b_alias <> b.b_alias
                    && Array.exists (fun col -> col = lc) b'.b_cols)
                  bindings)
        then Some lc
        else None
    | _ -> None
  in
  let bound_before i e =
    List.for_all (fun lvl -> lvl < i) (expr_aliases [] e)
  in
  (* Hash-join detection: at level i, a conjunct of the form
     col_of_source_i = expr_bound_earlier lets us index source i. *)
  let find_hash_key i =
    let col_of_i = col_of_source i in
    let bound_elsewhere = bound_before i in
    let rec scan = function
      | [] -> None
      | c :: rest -> (
          match c with
          | Binop (Eq, a, bb) -> (
              match (col_of_i a, bound_elsewhere bb) with
              | Some col, true -> Some (col, bb, c)
              | _ -> (
                  match (col_of_i bb, bound_elsewhere a) with
                  | Some col, true -> Some (col, a, c)
                  | _ -> scan rest))
          | _ -> scan rest)
    in
    scan level_conjuncts.(i)
  in
  let hash_plans = Array.init (max n 1) (fun i -> if i < n then find_hash_key i else None) in
  (* Build the hash index lazily per source. *)
  let hash_indexes :
      (Value.t, Value.t array list) Hashtbl.t option array =
    Array.make (max n 1) None
  in
  let get_index i col rows =
    match hash_indexes.(i) with
    | Some h -> h
    | None ->
        let b = bindings_arr.(i) in
        let ci =
          let rec go j = if b.b_cols.(j) = col then j else go (j + 1) in
          go 0
        in
        let h = Hashtbl.create 256 in
        List.iter
          (fun (r : Value.t array) ->
            let k = r.(ci) in
            if not (Value.is_null k) then
              Hashtbl.replace h k
                (r :: (Option.value (Hashtbl.find_opt h k) ~default:[])))
          rows;
        hash_indexes.(i) <- Some h;
        h
  in
  (* Period-overlap scan detection: at level i over a temporal base
     table, range conjuncts on begin_time/end_time whose other side is
     bound earlier describe a window [l, u) that every surviving row
     must overlap; the table's interval index then yields the candidate
     set in O(log n + k) instead of a full scan.  The conjuncts are
     never marked satisfied — every candidate is still checked exactly —
     so the index only has to return a superset, which makes NULLs,
     non-date timestamps and empty periods trivially correct. *)
  let find_period_plan i =
    let (_, _, src), left_on = sources_arr.(i) in
    match src with
    | `Scan sc when (Table.schema sc.sc_table).Schema.temporal ->
        let schema = Table.schema sc.sc_table in
        let which e =
          match col_of_source i e with
          | Some lc when lc = Schema.begin_time_col -> Some `Begin
          | Some lc when lc = Schema.end_time_col -> Some `End
          | _ -> None
        in
        (* A usable bound must be computable before source i is bound
           and side-effect free (it is evaluated once per scan rather
           than once per row). *)
        let usable e = bound_before i e && not (has_fun_call e) in
        (* Upper bounds u: begin_time < u.  Lower bounds l: end_time > l.
           Each entry is (bound expr, inclusive, source conjunct, exact):
           inclusive comparisons are widened by one day when evaluated;
           [exact] marks conjuncts the window implies outright (every
           comparison except Eq, whose other half the window cannot
           carry), letting the scan skip their per-row re-check when the
           index has no residual rows. *)
        let ubs = ref [] and lbs = ref [] in
        let consider c =
          match c with
          | Binop (op, x, y) -> (
              match (which x, which y) with
              | Some side, None when usable y -> (
                  match (side, op) with
                  | `Begin, Le -> ubs := (y, true, c, true) :: !ubs
                  | `Begin, Eq -> ubs := (y, true, c, false) :: !ubs
                  | `Begin, Lt -> ubs := (y, false, c, true) :: !ubs
                  | `End, Ge -> lbs := (y, true, c, true) :: !lbs
                  | `End, Eq -> lbs := (y, true, c, false) :: !lbs
                  | `End, Gt -> lbs := (y, false, c, true) :: !lbs
                  | _ -> ())
              | None, Some side when usable x -> (
                  match (side, op) with
                  | `Begin, Ge -> ubs := (x, true, c, true) :: !ubs
                  | `Begin, Eq -> ubs := (x, true, c, false) :: !ubs
                  | `Begin, Gt -> ubs := (x, false, c, true) :: !ubs
                  | `End, Le -> lbs := (x, true, c, true) :: !lbs
                  | `End, Eq -> lbs := (x, true, c, false) :: !lbs
                  | `End, Lt -> lbs := (x, false, c, true) :: !lbs
                  | _ -> ())
              | _ -> ())
          | _ -> ()
        in
        let conjuncts =
          match left_on with
          | None -> level_conjuncts.(i)
          | Some on ->
              (* LEFT JOIN: matches are selected by the ON condition. *)
              let rec split = function
                | Binop (And, a, b) -> split a @ split b
                | e -> [ e ]
              in
              split on
        in
        List.iter consider conjuncts;
        if !ubs = [] && !lbs = [] then None
        else
          Some (sc, Schema.begin_index schema, Schema.end_index schema, !ubs, !lbs)
    | _ -> None
  in
  let period_plans =
    Array.init (max n 1) (fun i ->
        if i < n && env.cat.Catalog.options.Catalog.temporal_index then
          find_period_plan i
        else None)
  in
  (* One plan event per SELECT evaluation: the join order with the
     statically-chosen access path at each level.  (A period plan can
     still fall back at runtime on a non-date bound; that shows up as a
     [scan.residual_fallback] counter.) *)
  if Trace.enabled env.cat.Catalog.obs && n > 0 then begin
    let path i =
      let (_, _, src), left_on = sources_arr.(i) in
      match src with
      | `Lateral _ | `Lateral_sub _ -> "lateral"
      | `Rows _ | `Scan _ -> (
          match hash_plans.(i) with
          | Some (col, _, _)
            when left_on = None && env.cat.Catalog.options.Catalog.hash_joins ->
              "hash(" ^ col ^ ")"
          | _ -> if period_plans.(i) <> None then "index" else "full")
    in
    let parts =
      List.init n (fun i -> bindings_arr.(i).b_alias ^ ":" ^ path i)
    in
    Trace.event env.cat.Catalog.obs "join" ("order=" ^ String.concat "," parts)
  end;
  (* Run level i's period plan, if any: evaluate the bound expressions
     (declining unless every one yields a DATE) and query the interval
     index.  Candidates come back in scan order, so downstream results
     are indistinguishable from a full scan.  The second component is
     the conjuncts the window already enforces exactly (b < min u_i
     implies every upper conjunct, e > max l_i every lower one) — valid
     only when the index has no residual rows, since residuals are
     returned unchecked. *)
  let obs = env.cat.Catalog.obs in
  let period_scan i =
    match period_plans.(i) with
    | None -> None
    | Some (sc, bi, ei, ubs, lbs) -> (
        let fold init pick adjust bounds =
          List.fold_left
            (fun acc (e, incl, _, _) ->
              match acc with
              | None -> None
              | Some v -> (
                  match eval_expr env e with
                  | Value.Date d -> Some (pick v (adjust d incl))
                  | _ -> None))
            (Some init) bounds
        in
        let u = fold max_int min (fun d incl -> if incl then d + 1 else d) ubs in
        let l = fold min_int max (fun d incl -> if incl then d - 1 else d) lbs in
        match (l, u) with
        | Some l, Some u ->
            let cands =
              Table.overlapping sc.sc_table ~bi ~ei ~begin_:l ~end_:u
            in
            let satisfied =
              if Table.overlap_residuals sc.sc_table ~bi ~ei = 0 then
                List.filter_map
                  (fun (_, _, c, exact) -> if exact then Some c else None)
                  (ubs @ lbs)
              else []
            in
            if Trace.enabled obs then begin
              let tname = Table.name sc.sc_table in
              Trace.count obs "scan.indexed" 1;
              Trace.count obs ("scan.indexed:" ^ tname) 1;
              Trace.count obs "rows.probed" (List.length cands);
              let bound d inf =
                if d = min_int || d = max_int then inf else Date.to_string d
              in
              Trace.event obs "scan"
                (Printf.sprintf
                   "indexed table=%s window=(%s,%s) probes=%d elided=%d" tname
                   (bound l "-inf") (bound u "+inf") (List.length cands)
                   (List.length satisfied))
            end;
            Some
              ( (match sc.sc_tt_filter with
                | Some p -> List.filter p cands
                | None -> cands),
                satisfied )
        | _ ->
            (* A bound did not evaluate to a DATE: fall back to the full
               scan rather than trust the window. *)
            if Trace.enabled obs then begin
              Trace.count obs "scan.residual_fallback" 1;
              Trace.event obs "scan"
                (Printf.sprintf "fallback table=%s (non-date bound)"
                   (Table.name sc.sc_table))
            end;
            None)
  in
  (* Push the new frame for this SELECT. *)
  let saved_frames = env.frames in
  env.frames <- bindings :: env.frames;
  Fun.protect
    ~finally:(fun () -> env.frames <- saved_frames)
    (fun () ->
      let grouped =
        s.group_by <> [] || s.having <> None
        || List.exists
             (function
               | Proj_expr (e, _) ->
                   fold_has_agg e
               | _ -> false)
             s.proj
      in
      let snapshots = ref [] in
      let flat_rows = ref [] in
      let emit () =
        Guard.charge_rows env.guard 1;
        if grouped then
          (* Snapshot the joined row for later grouping. *)
          snapshots := Array.map (fun b -> b.b_row) bindings_arr :: !snapshots
        else begin
          let out = eval_projection env s bindings in
          let keys =
            List.map (fun (e, _) -> eval_order_key env s bindings e) s.order_by
          in
          flat_rows := Array.of_list (out @ keys) :: !flat_rows
        end
      in
      let rec extend i =
        if i = n then begin
          (* Constant conjuncts at level 0 were already checked when n>0;
             when n=0 check them here. *)
          if n = 0 then begin
            if List.for_all (fun c -> truthy (eval_expr env c)) level_conjuncts.(0)
            then emit ()
          end
          else emit ()
        end
        else begin
          let (_, _, src), left_on = sources_arr.(i) in
          let b = bindings_arr.(i) in
          let all_rows () =
            match src with
            | `Rows rows -> rows
            | `Scan sc -> Lazy.force sc.sc_rows
            | `Lateral (args, fname) ->
                let argv = List.map (eval_expr env) args in
                if List.exists Value.is_null argv then []
                else (invoke_table_function env fname argv).Result_set.rows
            | `Lateral_sub q -> (eval_query env q).Result_set.rows
          in
          match left_on with
          | Some on ->
              (* LEFT JOIN: the ON condition selects matches; when none
                 match, the right side is null-extended (WHERE-level
                 conjuncts then apply to the extended row). *)
              let matched = ref false in
              (* The ON condition is evaluated whole, so the window's
                 satisfied conjuncts cannot be elided here. *)
              let rows =
                match period_scan i with
                | Some (cands, _) -> cands
                | None ->
                    let rows = all_rows () in
                    if Trace.enabled obs then begin
                      Trace.count obs "scan.full" 1;
                      Trace.count obs "rows.probed" (List.length rows)
                    end;
                    rows
              in
              List.iter
                (fun row ->
                  b.b_row <- row;
                  if truthy (eval_expr env on) then begin
                    matched := true;
                    if
                      List.for_all
                        (fun c -> truthy (eval_expr env c))
                        level_conjuncts.(i)
                    then begin
                      Trace.count obs "rows.matched" 1;
                      extend (i + 1)
                    end
                  end)
                rows;
              if not !matched then begin
                b.b_row <- Array.make (Array.length b.b_cols) Value.Null;
                if
                  List.for_all
                    (fun c -> truthy (eval_expr env c))
                    level_conjuncts.(i)
                then extend (i + 1)
              end
          | None ->
              (* [satisfied] lists conjuncts already enforced by the
                 access path — the hash lookup's equality, or the
                 interval-index window's exact comparisons; lateral
                 sources always scan. *)
              let candidate_rows, satisfied =
                match src with
                | `Lateral _ | `Lateral_sub _ ->
                    let rows = all_rows () in
                    if Trace.enabled obs then begin
                      Trace.count obs "scan.lateral" 1;
                      Trace.count obs "rows.probed" (List.length rows)
                    end;
                    (rows, [])
                | `Rows _ | `Scan _ -> (
                    let hash_plan =
                      if env.cat.Catalog.options.Catalog.hash_joins then
                        hash_plans.(i)
                      else None
                    in
                    match hash_plan with
                    | Some (col, probe, used) ->
                        let rows =
                          let k = eval_expr env probe in
                          if Value.is_null k then []
                          else
                            match
                              Hashtbl.find_opt (get_index i col (all_rows ())) k
                            with
                            | Some rs -> rs
                            | None -> []
                        in
                        if Trace.enabled obs then begin
                          Trace.count obs "scan.hash" 1;
                          Trace.count obs "rows.probed" (List.length rows)
                        end;
                        (rows, [ used ])
                    | None -> (
                        match period_scan i with
                        | Some (cands, sat) -> (cands, sat)
                        | None ->
                            let rows = all_rows () in
                            if Trace.enabled obs then begin
                              let tname =
                                match src with
                                | `Scan sc -> Table.name sc.sc_table
                                | _ -> b.b_alias
                              in
                              Trace.count obs "scan.full" 1;
                              Trace.count obs ("scan.full:" ^ tname) 1;
                              Trace.count obs "rows.probed" (List.length rows)
                            end;
                            (rows, [])))
              in
              let checks =
                match satisfied with
                | [] -> level_conjuncts.(i)
                | sat ->
                    List.filter
                      (fun c -> not (List.memq c sat))
                      level_conjuncts.(i)
              in
              if Trace.enabled obs && satisfied <> [] then
                Trace.count obs "conjuncts.elided" (List.length satisfied);
              List.iter
                (fun row ->
                  b.b_row <- row;
                  if List.for_all (fun c -> truthy (eval_expr env c)) checks
                  then begin
                    Trace.count obs "rows.matched" 1;
                    extend (i + 1)
                  end)
                candidate_rows
        end
      in
      extend 0;
      if grouped then finish_grouped env s bindings (List.rev !snapshots)
      else finish_flat env s (List.rev !flat_rows))

and fold_has_agg e =
  let rec go = function
    | Agg _ -> true
    | Lit _ | Col _ -> false
    | Binop (_, a, b) -> go a || go b
    | Unop (_, a) | Cast (a, _) | Is_null (a, _) -> go a
    | Fun_call (_, args) -> List.exists go args
    | Case c ->
        (match c.case_operand with Some e -> go e | None -> false)
        || List.exists (fun (w, t) -> go w || go t) c.case_branches
        || (match c.case_else with Some e -> go e | None -> false)
    | Exists _ | Scalar_subquery _ -> false
    | In_pred (e, In_list es, _) -> go e || List.exists go es
    | In_pred (e, In_query _, _) -> go e
    | Between (a, b, c, _) -> go a || go b || go c
    | Like (a, b, _) -> go a || go b
  in
  go e

(* Output column names for a projection. *)
and projection_columns env s (bindings : binding list) =
  List.concat_map
    (function
      | Star ->
          List.concat_map (fun b -> Array.to_list b.b_cols) bindings
      | Qual_star q -> (
          let lq = String.lowercase_ascii q in
          match List.find_opt (fun b -> b.b_alias = lq) bindings with
          | Some b -> Array.to_list b.b_cols
          | None -> sql_error "unknown alias %s.*" q)
      | Proj_expr (_, Some a) -> [ a ]
      | Proj_expr (Col (_, c), None) -> [ c ]
      | Proj_expr (Agg (af, _, _), None) ->
          [ String.lowercase_ascii (match af with
              | Count_star | Count -> "count" | Sum -> "sum" | Avg -> "avg"
              | Min -> "min" | Max -> "max") ]
      | Proj_expr (_, None) -> [ "?column?" ])
    s.proj
  |> fun cols ->
  ignore env;
  cols

(* Evaluate the projection against the currently-bound rows. *)
and eval_projection env s (bindings : binding list) : Value.t list =
  List.concat_map
    (function
      | Star -> List.concat_map (fun b -> Array.to_list b.b_row) bindings
      | Qual_star q -> (
          let lq = String.lowercase_ascii q in
          match List.find_opt (fun b -> b.b_alias = lq) bindings with
          | Some b -> Array.to_list b.b_row
          | None -> sql_error "unknown alias %s.*" q)
      | Proj_expr (e, _) -> [ eval_expr env e ])
    s.proj

and eval_order_key env s bindings e =
  (* An ORDER BY item that names a projection alias refers to the output;
     anything else is evaluated in the row context. *)
  ignore s;
  ignore bindings;
  eval_expr env e

and finish_flat env (s : select) rows_with_keys : Result_set.t =
  let nkeys = List.length s.order_by in
  let cols =
    (* Column names need bindings; recompute from a representative.  The
       projection columns don't depend on row values. *)
    match env.frames with
    | frame :: _ -> projection_columns env s frame
    | [] -> assert false
  in
  let nout = List.length cols in
  let rows_with_keys =
    if s.distinct then
      let seen = Hashtbl.create 64 in
      List.filter
        (fun (r : Value.t array) ->
          let key = Array.to_list (Array.sub r 0 nout) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        rows_with_keys
    else rows_with_keys
  in
  let rows_with_keys =
    if nkeys = 0 then rows_with_keys
    else
      let dirs = Array.of_list (List.map snd s.order_by) in
      List.stable_sort
        (fun (a : Value.t array) b ->
          let rec go i =
            if i >= nkeys then 0
            else
              let c = Value.compare_total a.(nout + i) b.(nout + i) in
              let c = match dirs.(i) with Asc -> c | Desc -> -c in
              if c <> 0 then c else go (i + 1)
          in
          go 0)
        rows_with_keys
  in
  let rows = List.map (fun r -> Array.sub r 0 nout) rows_with_keys in
  let count_of e = Value.to_int_exn (eval_expr env e) in
  let rows =
    match s.offset with
    | None -> rows
    | Some k ->
        let k = count_of k in
        List.filteri (fun i _ -> i >= k) rows
  in
  let rows =
    match s.fetch_first with
    | None -> rows
    | Some k ->
        let k = count_of k in
        List.filteri (fun i _ -> i < k) rows
  in
  { Result_set.cols; rows }

and finish_grouped env (s : select) bindings snapshots : Result_set.t =
  let cols = projection_columns env s bindings in
  (* Group snapshots by the GROUP BY key. *)
  let groups : (Value.t list, Value.t array array list) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun snap ->
      set_bindings bindings snap;
      let key = List.map (eval_expr env) s.group_by in
      (match Hashtbl.find_opt groups key with
      | Some members -> Hashtbl.replace groups key (snap :: members)
      | None ->
          order := key :: !order;
          Hashtbl.replace groups key [ snap ]))
    snapshots;
  let keys_in_order = List.rev !order in
  let keys_in_order =
    (* No GROUP BY but aggregates: a single group over all rows, present
       even when the input is empty. *)
    if s.group_by = [] then [ [] ] else keys_in_order
  in
  let out_rows = ref [] in
  List.iter
    (fun key ->
      let members =
        match Hashtbl.find_opt groups key with
        | Some ms -> List.rev ms
        | None -> []
      in
      let g = { g_bindings = bindings; g_rows = members } in
      (match members with
      | snap :: _ -> set_bindings bindings snap
      | [] -> ());
      let ok =
        match s.having with
        | None -> true
        | Some h ->
            if members = [] && s.group_by = [] then
              truthy (eval_expr env ~group:g h)
            else truthy (eval_expr env ~group:g h)
      in
      if ok then begin
        let row =
          List.concat_map
            (function
              | Star | Qual_star _ ->
                  sql_error "SELECT * is not allowed in a grouped query"
              | Proj_expr (e, _) -> [ eval_expr env ~group:g e ])
            s.proj
        in
        let keys =
          List.map (fun (e, _) -> eval_expr env ~group:g e) s.order_by
        in
        out_rows := Array.of_list (row @ keys) :: !out_rows
      end)
    keys_in_order;
  finish_flat env { s with distinct = s.distinct } (List.rev !out_rows)
  |> fun rs -> { rs with Result_set.cols = cols }

(* Collect (qualifier, column) references of a select block, shallowly. *)
and collect_col_refs (sel : select) : (string option * string) list =
  let acc = ref [] in
  let rec walk (e : expr) =
    match e with
    | Col (q, c) -> acc := (q, c) :: !acc
    | Lit _ -> ()
    | Binop (_, a, b) -> walk a; walk b
    | Unop (_, a) | Cast (a, _) | Is_null (a, _) -> walk a
    | Fun_call (_, args) -> List.iter walk args
    | Agg (_, _, Some a) -> walk a
    | Agg (_, _, None) -> ()
    | Case c ->
        Option.iter walk c.case_operand;
        List.iter (fun (w, t) -> walk w; walk t) c.case_branches;
        Option.iter walk c.case_else
    | Exists _ | Scalar_subquery _ -> ()
    | In_pred (e, In_list es, _) -> walk e; List.iter walk es
    | In_pred (e, In_query _, _) -> walk e
    | Between (a, b, c, _) -> walk a; walk b; walk c
    | Like (a, b, _) -> walk a; walk b
  in
  List.iter (function Proj_expr (e, _) -> walk e | _ -> ()) sel.proj;
  Option.iter walk sel.where;
  List.iter walk sel.group_by;
  Option.iter walk sel.having;
  !acc

(* ------------------------------------------------------------------ *)
(* Routine invocation                                                  *)
(* ------------------------------------------------------------------ *)

and bind_params env (r : routine) argv =
  if List.length r.r_params <> List.length argv then
    sql_error "%s expects %d argument(s), got %d" r.r_name
      (List.length r.r_params) (List.length argv);
  List.iter2 (fun p v -> declare_var env p.p_name v) r.r_params argv

and invoke_scalar_function env (r : routine) argv : Value.t =
  Fault.hit Fault.Routine_call;
  incr env.depth;
  Guard.check_depth env.guard !(env.depth);
  Fun.protect
    ~finally:(fun () -> decr env.depth)
    (fun () ->
      env.calls <- env.calls + 1;
      let obs = env.cat.Catalog.obs in
      Trace.count obs "routine.calls" 1;
      Taupsm_error.with_routine r.r_name (fun () ->
          atomically env (fun () ->
              Trace.time obs "routine.seconds" (fun () ->
                  let renv = routine_env env in
                  bind_params renv r argv;
                  match exec_stmts renv r.r_body with
                  | () -> sql_error "function %s ended without RETURN" r.r_name
                  | exception Return_value v -> v))))

and invoke_routine_table env (r : routine) argv : Result_set.t =
  Fault.hit Fault.Routine_call;
  incr env.depth;
  Guard.check_depth env.guard !(env.depth);
  Fun.protect
    ~finally:(fun () -> decr env.depth)
    (fun () ->
      env.calls <- env.calls + 1;
      let obs = env.cat.Catalog.obs in
      Trace.count obs "routine.calls" 1;
      Taupsm_error.with_routine r.r_name (fun () ->
          atomically env (fun () ->
              Trace.time obs "routine.seconds" (fun () ->
                  let renv = routine_env env in
                  bind_params renv r argv;
                  match exec_stmts renv r.r_body with
                  | () ->
                      sql_error "table function %s ended without RETURN"
                        r.r_name
                  | exception Return_table rs -> rs
                  | exception Return_value _ ->
                      sql_error "table function %s returned a scalar" r.r_name))))

and invoke_procedure env (r : routine) (args : expr list) : unit =
  Fault.hit Fault.Routine_call;
  incr env.depth;
  Guard.check_depth env.guard !(env.depth);
  Fun.protect
    ~finally:(fun () -> decr env.depth)
    (fun () ->
      env.calls <- env.calls + 1;
      Trace.count env.cat.Catalog.obs "routine.calls" 1;
      if List.length r.r_params <> List.length args then
        sql_error "%s expects %d argument(s), got %d" r.r_name
          (List.length r.r_params) (List.length args);
      Taupsm_error.with_routine r.r_name @@ fun () ->
      atomically env @@ fun () ->
      let renv = routine_env env in
      (* IN params: by value.  OUT/INOUT: the argument must be a variable
         of the caller; copy back after the body runs. *)
      let copy_backs = ref [] in
      List.iter2
        (fun p arg ->
          match p.p_mode with
          | Pin -> declare_var renv p.p_name (eval_expr env arg)
          | Pout | Pinout ->
              let var_name =
                match arg with
                | Col (None, v) -> v
                | _ ->
                    sql_error "OUT argument of %s must be a variable" r.r_name
              in
              let caller_ref =
                match find_var env var_name with
                | Some rf -> rf
                | None -> sql_error "unknown variable %s" var_name
              in
              let init = if p.p_mode = Pinout then !caller_ref else Value.Null in
              declare_var renv p.p_name init;
              copy_backs := (p.p_name, caller_ref) :: !copy_backs)
        r.r_params args;
      (match exec_stmts renv r.r_body with
      | () -> ()
      | exception Return_value _ -> ());
      List.iter
        (fun (pname, caller_ref) ->
          match find_var renv pname with
          | Some rf -> caller_ref := !rf
          | None -> ())
        !copy_backs)

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec_stmts env (stmts : stmt list) : unit =
  List.iter (fun s -> ignore (exec_stmt env s)) stmts

and not_found env vars =
  (* NOT FOUND condition: run the CONTINUE handler if one is declared,
     otherwise set the target variables to NULL. *)
  match find_handler env with
  | Some h -> ignore (exec_stmt env h)
  | None ->
      List.iter
        (fun v ->
          match find_var env v with
          | Some r -> r := Value.Null
          | None -> ())
        vars

and exec_stmt env (s : stmt) : exec_result =
  Guard.step env.guard;
  match s with
  | Squery q -> Rows (eval_query env q)
  | Sinsert (tname, cols, src) -> exec_insert env tname cols src
  | Supdate (tname, sets, where) -> exec_update env tname sets where
  | Sdelete (tname, where) -> exec_delete env tname where
  | Smerge _ ->
      sql_error
        "TEMPORAL MERGE must be executed through the temporal stratum"
  | Screate_table ct -> exec_create_table env ct
  | Sdrop_table name ->
      Database.drop_table env.cat.Catalog.db name;
      Unit
  | Screate_view (name, q) ->
      Catalog.add_view env.cat name q;
      Unit
  | Screate_function r ->
      Catalog.add_routine ~replace:true env.cat Catalog.Rfunction r;
      Unit
  | Screate_procedure r ->
      Catalog.add_routine ~replace:true env.cat Catalog.Rprocedure r;
      Unit
  | Scall (name, args) -> (
      match Catalog.find_procedure env.cat name with
      | Some r ->
          invoke_procedure env r args;
          Unit
      | None -> sql_error "unknown procedure %s" name)
  | Sdeclare (names, ty, init) ->
      let v =
        match init with
        | Some e -> Value.cast ~ty (eval_expr env e)
        | None -> Value.Null
      in
      List.iter (fun n -> declare_var env n v) names;
      Unit
  | Sdeclare_cursor (name, q) ->
      (match env.scopes with
      | [] -> sql_error "DECLARE CURSOR outside of a routine body"
      | sc :: _ ->
          Hashtbl.replace sc.cursors
            (String.lowercase_ascii name)
            { c_query = q; c_rows = None; c_pos = 0 });
      Unit
  | Sdeclare_handler h ->
      (match env.scopes with
      | [] -> sql_error "DECLARE HANDLER outside of a routine body"
      | sc :: _ -> sc.handler <- Some h);
      Unit
  | Sset (v, e) -> (
      match find_var env v with
      | Some r ->
          r := eval_expr env e;
          Unit
      | None -> sql_error "unknown variable %s" v)
  | Sselect_into (sel, vars) -> (
      let rs = eval_select env sel in
      match rs.Result_set.rows with
      | [] ->
          not_found env vars;
          Unit
      | row :: _ ->
          if List.length vars <> Array.length row then
            sql_error "SELECT INTO: %d variable(s) for %d column(s)"
              (List.length vars) (Array.length row);
          List.iteri
            (fun i v ->
              match find_var env v with
              | Some r -> r := row.(i)
              | None -> sql_error "unknown variable %s" v)
            vars;
          Unit)
  | Sif (branches, els) -> (
      let rec go = function
        | [] -> ( match els with Some body -> exec_stmts env body | None -> ())
        | (cond, body) :: rest ->
            if truthy (eval_expr env cond) then exec_stmts env body else go rest
      in
      go branches;
      Unit)
  | Scase_stmt (operand, branches, els) -> (
      let test =
        match operand with
        | Some op ->
            let v = eval_expr env op in
            fun w -> truthy (v_compare Eq v (eval_expr env w))
        | None -> fun w -> truthy (eval_expr env w)
      in
      let rec go = function
        | [] -> ( match els with Some body -> exec_stmts env body | None -> ())
        | (w, body) :: rest -> if test w then exec_stmts env body else go rest
      in
      go branches;
      Unit)
  | Swhile (label, cond, body) ->
      exec_loop env label (fun () ->
          if truthy (eval_expr env cond) then begin
            exec_stmts env body;
            true
          end
          else false);
      Unit
  | Srepeat (label, body, until) ->
      exec_loop env label (fun () ->
          exec_stmts env body;
          not (truthy (eval_expr env until)));
      Unit
  | Sloop (label, body) ->
      exec_loop env label (fun () ->
          exec_stmts env body;
          true);
      Unit
  | Sfor f ->
      let rs = eval_query env f.for_query in
      let cols =
        Array.of_list (List.map String.lowercase_ascii rs.Result_set.cols)
      in
      let b = { b_alias = "#for"; b_cols = cols; b_row = [||] } in
      let saved = env.frames in
      env.frames <- [ b ] :: env.frames;
      Fun.protect
        ~finally:(fun () -> env.frames <- saved)
        (fun () ->
          (try
             let iters = ref 0 in
             List.iter
               (fun row ->
                 incr iters;
                 Guard.check_loop env.guard !iters;
                 b.b_row <- row;
                 try exec_stmts env f.for_body
                 with Iterate_loop l
                 when Some (String.lowercase_ascii l)
                      = Option.map String.lowercase_ascii f.for_label ->
                   ())
               rs.Result_set.rows
           with Leave_loop l
           when Some (String.lowercase_ascii l)
                = Option.map String.lowercase_ascii f.for_label ->
             ());
          Unit)
  | Sleave l -> raise (Leave_loop l)
  | Siterate l -> raise (Iterate_loop l)
  | Sopen name -> (
      match find_cursor env name with
      | Some c ->
          c.c_rows <- Some (eval_query env c.c_query);
          c.c_pos <- 0;
          Unit
      | None -> sql_error "unknown cursor %s" name)
  | Sclose name -> (
      match find_cursor env name with
      | Some c ->
          c.c_rows <- None;
          c.c_pos <- 0;
          Unit
      | None -> sql_error "unknown cursor %s" name)
  | Sfetch (name, vars) -> (
      match find_cursor env name with
      | Some c -> (
          match c.c_rows with
          | None -> sql_error "cursor %s is not open" name
          | Some rs ->
              (match List.nth_opt rs.Result_set.rows c.c_pos with
              | None -> not_found env vars
              | Some row ->
                  c.c_pos <- c.c_pos + 1;
                  if List.length vars <> Array.length row then
                    sql_error "FETCH: %d variable(s) for %d column(s)"
                      (List.length vars) (Array.length row);
                  List.iteri
                    (fun i v ->
                      match find_var env v with
                      | Some r -> r := row.(i)
                      | None -> sql_error "unknown variable %s" v)
                    vars);
              Unit)
      | None -> sql_error "unknown cursor %s" name)
  | Sreturn None -> raise (Return_value Value.Null)
  | Sreturn (Some e) -> raise (Return_value (eval_expr env e))
  | Sreturn_query q -> raise (Return_table (eval_query env q))
  | Sbegin body ->
      let saved = env.scopes in
      env.scopes <- new_scope () :: env.scopes;
      Fun.protect
        ~finally:(fun () -> env.scopes <- saved)
        (fun () ->
          exec_stmts env body;
          Unit)
  | Stemporal _ ->
      sql_error
        "temporal statement modifier reached the conventional engine; \
         routines containing VALIDTIME are only invocable from a \
         nonsequenced context (the stratum rejects or rewrites them)"

and exec_loop env label step =
  let matches l =
    match label with
    | Some l' -> String.lowercase_ascii l = String.lowercase_ascii l'
    | None -> false
  in
  let rec go iters =
    Guard.check_loop env.guard iters;
    let continue_ =
      try step () with
      | Iterate_loop l when matches l -> true
      | Leave_loop l when matches l -> false
    in
    if continue_ then go (iters + 1)
  in
  go 1

and exec_insert env tname cols src : exec_result =
  let t = Database.find_table_exn env.cat.Catalog.db tname in
  let schema = Table.schema t in
  let arity = Schema.arity schema in
  let transactional = schema.Schema.transaction in
  (* Transaction time is system-maintained: users may not write it, and
     every inserted row is stamped [now, forever). *)
  (if transactional then
     match cols with
     | Some cs ->
         List.iter
           (fun c ->
             let k = String.lowercase_ascii c in
             if k = Schema.tt_begin_col || k = Schema.tt_end_col then
               sql_error
                 "column %s is system-maintained (transaction time)" c)
           cs
     | None -> ());
  let positions =
    match cols with
    | None ->
        if transactional then Array.init (arity - 2) Fun.id
        else Array.init arity Fun.id
    | Some cs ->
        let seen = Hashtbl.create 8 in
        List.iter
          (fun c ->
            let k = String.lowercase_ascii c in
            if Hashtbl.mem seen k then
              sql_error "INSERT names column %s twice" c;
            Hashtbl.add seen k ())
          cs;
        Array.of_list (List.map (Schema.column_index_exn schema) cs)
  in
  let tys =
    Array.of_list (List.map (fun c -> c.Schema.col_ty) schema.Schema.columns)
  in
  let insert_values vs =
    if List.length vs <> Array.length positions then
      sql_error "INSERT: %d value(s) for %d column(s)" (List.length vs)
        (Array.length positions);
    let row = Array.make arity Value.Null in
    List.iteri
      (fun i v ->
        let pos = positions.(i) in
        row.(pos) <- Value.cast ~ty:tys.(pos) v)
      vs;
    if transactional then begin
      row.(Schema.tt_begin_index schema) <- Value.Date env.now;
      row.(Schema.tt_end_index schema) <- Value.Date Date.forever
    end;
    Guard.charge_rows env.guard 1;
    Table.insert t row
  in
  match src with
  | Ivalues rows ->
      List.iter (fun es -> insert_values (List.map (eval_expr env) es)) rows;
      Affected (List.length rows)
  | Iquery q ->
      let rs = eval_query env q in
      List.iter (fun r -> insert_values (Array.to_list r)) rs.Result_set.rows;
      Affected (List.length rs.Result_set.rows)

and with_table_binding env t f =
  let schema = Table.schema t in
  let cols =
    Array.of_list
      (List.map
         (fun c -> String.lowercase_ascii c.Schema.col_name)
         schema.Schema.columns)
  in
  let b =
    {
      b_alias = String.lowercase_ascii (Table.name t);
      b_cols = cols;
      b_row = [||];
    }
  in
  let saved = env.frames in
  env.frames <- [ b ] :: env.frames;
  Fun.protect ~finally:(fun () -> env.frames <- saved) (fun () -> f b)

and exec_update env tname sets where : exec_result =
  let t = Database.find_table_exn env.cat.Catalog.db tname in
  let schema = Table.schema t in
  (List.iter
     (fun (c, _) ->
       if
         schema.Schema.transaction
         &&
         let k = String.lowercase_ascii c in
         k = Schema.tt_begin_col || k = Schema.tt_end_col
       then sql_error "column %s is system-maintained (transaction time)" c)
     sets);
  let set_idx =
    List.map
      (fun (c, e) ->
        let i = Schema.column_index_exn schema c in
        let ty = (List.nth schema.Schema.columns i).Schema.col_ty in
        (i, ty, e))
      sets
  in
  if not schema.Schema.transaction then
    with_table_binding env t (fun b ->
        let n =
          Table.update_where
            (fun row ->
              b.b_row <- row;
              match where with
              | None -> true
              | Some w -> truthy (eval_expr env w))
            (fun row ->
              b.b_row <- row;
              let row' = Array.copy row in
              List.iter
                (fun (i, ty, e) -> row'.(i) <- Value.cast ~ty (eval_expr env e))
                set_idx;
              row')
            t
        in
        Affected n)
  else begin
    (* Transaction-time table: the update is append-only.  The matching
       current rows are closed at [now] and re-inserted with the new
       values, stamped [now, forever); rows opened today are rewritten
       in place (a zero-length transaction period would be invalid). *)
    let bi = Schema.tt_begin_index schema and ei = Schema.tt_end_index schema in
    let is_current (row : Value.t array) =
      Value.to_date_exn row.(ei) = Date.forever
    in
    with_table_binding env t (fun b ->
        let matches row =
          b.b_row <- row;
          is_current row
          && match where with
             | None -> true
             | Some w -> truthy (eval_expr env w)
        in
        let modified row =
          b.b_row <- row;
          let row' = Array.copy row in
          List.iter
            (fun (i, ty, e) -> row'.(i) <- Value.cast ~ty (eval_expr env e))
            set_idx;
          row'
        in
        let to_reopen = ref [] in
        let n =
          Table.update_where matches
            (fun row ->
              if Value.to_date_exn row.(bi) = env.now then modified row
              else begin
                let fresh = modified row in
                fresh.(bi) <- Value.Date env.now;
                fresh.(ei) <- Value.Date Date.forever;
                to_reopen := fresh :: !to_reopen;
                let closed = Array.copy row in
                closed.(ei) <- Value.Date env.now;
                closed
              end)
            t
        in
        List.iter (Table.insert t) !to_reopen;
        Affected n)
  end

and exec_delete env tname where : exec_result =
  let t = Database.find_table_exn env.cat.Catalog.db tname in
  let schema = Table.schema t in
  if not schema.Schema.transaction then
    with_table_binding env t (fun b ->
        let n =
          Table.delete_where
            (fun row ->
              b.b_row <- row;
              match where with
              | None -> true
              | Some w -> truthy (eval_expr env w))
            t
        in
        Affected n)
  else begin
    (* Transaction-time table: a delete closes the current version at
       [now]; versions opened today are removed outright. *)
    let bi = Schema.tt_begin_index schema and ei = Schema.tt_end_index schema in
    with_table_binding env t (fun b ->
        let matches row =
          b.b_row <- row;
          Value.to_date_exn row.(ei) = Date.forever
          && match where with
             | None -> true
             | Some w -> truthy (eval_expr env w)
        in
        let removed =
          Table.delete_where
            (fun row -> matches row && Value.to_date_exn row.(bi) = env.now)
            t
        in
        let closed =
          Table.update_where matches
            (fun row ->
              let row' = Array.copy row in
              row'.(ei) <- Value.Date env.now;
              row')
            t
        in
        Affected (removed + closed))
  end

and exec_create_table env ct : exec_result =
  let from_result rs =
    (* Infer column types from the first row with a non-NULL value. *)
    List.mapi
      (fun i cname ->
        let ty =
          let rec scan = function
            | [] -> Value.Tstring
            | (r : Value.t array) :: rest -> (
                match Value.type_of r.(i) with
                | Some ty -> ty
                | None -> scan rest)
          in
          scan rs.Result_set.rows
        in
        Schema.column ~name:cname ~ty)
      rs.Result_set.cols
  in
  let rs = Option.map (eval_query env) ct.ct_as in
  let columns =
    if ct.ct_cols <> [] then
      List.map (fun cd -> Schema.column ~name:cd.cd_name ~ty:cd.cd_ty) ct.ct_cols
    else
      match rs with
      | Some rs -> from_result rs
      | None -> sql_error "CREATE TABLE %s lacks both columns and AS query" ct.ct_name
  in
  (* For a temporal table defined AS a query, the query's own trailing
     begin_time/end_time columns serve as the timestamps. *)
  let temporal_cols_from_query =
    ct.ct_temporal && ct.ct_cols = []
    && List.exists
         (fun (c : Schema.column) ->
           String.lowercase_ascii c.Schema.col_name = Schema.begin_time_col)
         columns
  in
  let schema =
    Schema.make ~name:ct.ct_name ~columns ~transaction:ct.ct_transaction
      ~temporal:(ct.ct_temporal && not temporal_cols_from_query) ()
  in
  let schema =
    if temporal_cols_from_query then { schema with Schema.temporal = true }
    else schema
  in
  let constraints =
    List.map
      (function
        | Ct_temporal_pk cols -> Schema.Temporal_pk cols
        | Ct_temporal_fk (cols, rt, rcols) ->
            Schema.Temporal_fk
              { fk_cols = cols; ref_table = rt; ref_cols = rcols })
      ct.ct_constraints
  in
  if constraints <> [] && not schema.Schema.temporal then
    sql_error "temporal constraints require a VALIDTIME table (%s)" ct.ct_name;
  let check_cols owner cols =
    if cols = [] then
      sql_error "empty constraint column list on table %s" ct.ct_name;
    List.iter
      (fun c ->
        if Schema.is_timestamp_col owner c then
          sql_error "constraint column %s of %s is a timestamp column" c
            owner.Schema.name;
        if Schema.column_index owner c = None then
          sql_error "constraint column %s not in table %s" c owner.Schema.name)
      cols
  in
  List.iter
    (function
      | Schema.Temporal_pk cols -> check_cols schema cols
      | Schema.Temporal_fk { fk_cols; ref_table; ref_cols } -> (
          check_cols schema fk_cols;
          if List.length fk_cols <> List.length ref_cols then
            sql_error
              "TEMPORAL FOREIGN KEY on %s: column count mismatch with %s"
              ct.ct_name ref_table;
          match Database.find_table env.cat.Catalog.db ref_table with
          | None ->
              sql_error "TEMPORAL FOREIGN KEY on %s references unknown table %s"
                ct.ct_name ref_table
          | Some rt ->
              let rsch = Table.schema rt in
              if not rsch.Schema.temporal then
                sql_error
                  "TEMPORAL FOREIGN KEY on %s references non-VALIDTIME table %s"
                  ct.ct_name ref_table;
              check_cols rsch ref_cols))
    constraints;
  let schema =
    if constraints = [] then schema else { schema with Schema.constraints }
  in
  let table = Table.create schema in
  (match rs with
  | Some rs ->
      List.iter
        (fun r ->
          if Array.length r <> Schema.arity schema then
            sql_error "CREATE TABLE AS: arity mismatch for %s" ct.ct_name;
          Table.insert table (Array.copy r))
        rs.Result_set.rows
  | None -> ());
  if ct.ct_temp then Database.add_temp_table env.cat.Catalog.db table
  else Database.add_table env.cat.Catalog.db table;
  Unit

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* Execute a conventional (already transformed) statement. *)
let exec_toplevel ?now ?tt_mode cat (s : stmt) : exec_result =
  let env = create_env ?now ?tt_mode cat in
  (* A top-level statement may be a bare PSM block (used by generated
     code); give it a scope. *)
  env.scopes <- [ new_scope () ];
  Guard.enter env.guard;
  Fun.protect
    ~finally:(fun () -> Guard.leave env.guard)
    (fun () -> atomically env (fun () -> exec_stmt env s))
