(* The engine facade: a conventional SQL/PSM engine over an in-memory
   catalog.  This is the layer *below* the stratum: it knows nothing of
   temporal semantics; temporal tables are just tables whose trailing
   columns happen to be begin_time/end_time (flagged in the schema).

   [now] is the session's CURRENT_DATE, settable for reproducible tests
   of current semantics. *)

type t = { cat : Catalog.t; mutable now : Sqldb.Date.t }

let default_now = Sqldb.Date.of_ymd ~y:2011 ~m:1 ~d:1

let create ?(now = default_now) () = { cat = Catalog.create (); now }

(* Wrap an existing catalog — typically a {!Catalog.read_view} of a
   published snapshot — in an engine facade, pinning the session clock. *)
let of_catalog ?(now = default_now) cat = { cat; now }

let catalog t = t.cat
let database t = t.cat.Catalog.db
let guards t = t.cat.Catalog.options.Catalog.guards
let set_now t d = t.now <- d
let now t = t.now

(* A deep copy (storage copied, ASTs shared). *)
let copy t = { cat = Catalog.copy t.cat; now = t.now }

(* Execute one conventional statement (AST form).  [tt_mode] selects the
   transaction-time reading mode (current state by default). *)
let exec_stmt ?tt_mode t (s : Sqlast.Ast.stmt) : Eval.exec_result =
  Eval.exec_toplevel ~now:t.now ?tt_mode t.cat s

(* Execute one conventional statement (SQL text). *)
let exec t (sql : string) : Eval.exec_result =
  exec_stmt t (Sqlparse.Parser.parse_stmt_string sql)

(* Execute a script of ';'-separated conventional statements. *)
let exec_script t (sql : string) : unit =
  List.iter
    (fun (ts : Sqlast.Ast.temporal_stmt) ->
      match ts.Sqlast.Ast.t_modifier with
      | Sqlast.Ast.Mod_current -> ignore (exec_stmt t ts.Sqlast.Ast.t_stmt)
      | _ ->
          raise
            (Eval.Sql_error
               "temporal modifier in a conventional script; use the stratum"))
    (Sqlparse.Parser.parse_script sql)

(* Evaluate a query and return its result set. *)
let query t (sql : string) : Result_set.t =
  match exec t sql with
  | Eval.Rows rs -> rs
  | _ -> raise (Eval.Sql_error "statement did not produce rows")

let query_stmt t (q : Sqlast.Ast.query) : Result_set.t =
  match exec_stmt t (Sqlast.Ast.Squery q) with
  | Eval.Rows rs -> rs
  | _ -> assert false

(* Number of stored-routine invocations performed by one statement:
   the paper's key cost driver for MAX vs PERST (Figure 7). *)
let exec_counting_calls ?tt_mode t (s : Sqlast.Ast.stmt) : Eval.exec_result * int =
  let env = Eval.create_env ~now:t.now ?tt_mode t.cat in
  env.Eval.scopes <- [ Eval.new_scope () ];
  let r = Eval.exec_stmt env s in
  (r, env.Eval.calls)
