(* Engine-level durability: glue between an {!Engine.t} and the
   durable store (lib/durable).

   The store itself speaks only storage types — tables, rows, opaque
   DDL strings.  This module closes the loop at the engine layer:
   snapshots capture the engine clock and the catalog's view/routine
   definitions (via {!Catalog.ddl_dump}); recovery re-parses replayed
   DDL and re-registers it, which also bumps the catalog generation so
   any plan cached against pre-recovery state is invalid. *)

type handle = { dir : string; store : Durable.Store.t }

(* Re-apply one recovered DDL statement.  The recovering database has
   no WAL hook installed, so re-registration writes nothing back. *)
let apply_ddl cat sql =
  match Sqlparse.Parser.parse_stmt_string sql with
  | Sqlast.Ast.Screate_view (name, q) -> Catalog.add_view cat name q
  | Sqlast.Ast.Screate_function r ->
      Catalog.add_routine ~replace:true cat Catalog.Rfunction r
  | Sqlast.Ast.Screate_procedure r ->
      Catalog.add_routine ~replace:true cat Catalog.Rprocedure r
  | _ ->
      Taupsm_error.raise_error Taupsm_error.Durability
        "recovered WAL carries a non-DDL catalog statement: %s" sql
  | exception e ->
      Taupsm_error.raise_error Taupsm_error.Durability
        "recovered DDL does not re-parse (%s): %s" (Printexc.to_string e) sql

let obs_of obs cat = match obs with Some o -> o | None -> Catalog.trace cat

(* Auxiliary engine state riding in the WAL/snapshot stream.  Today
   that is one record: the adaptive-strategy calibration (keyed blobs
   are open-ended — adding a record kind later costs nothing).  Aux
   records are advisory: recovery applies whatever survives on disk and
   the engine re-learns the rest, so they sit outside the
   committed-prefix guarantee. *)
let calibration_aux_name = "calibration"

let aux_closures cat =
  let aux () =
    if Calibration.size cat.Catalog.calibration = 0 then []
    else [ (calibration_aux_name, Calibration.save cat.Catalog.calibration) ]
  in
  let aux_dirty () =
    if Calibration.is_dirty cat.Catalog.calibration then begin
      Calibration.clear_dirty cat.Catalog.calibration;
      [ (calibration_aux_name, Calibration.save cat.Catalog.calibration) ]
    end
    else []
  in
  (aux, aux_dirty)

let on_aux cat name blob =
  if name = calibration_aux_name then
    Calibration.load cat.Catalog.calibration blob

(* Fresh attach: snapshot the engine as it stands and start logging. *)
let attach ?policy ?snapshot_every ?obs ~dir (e : Engine.t) =
  let cat = Engine.catalog e in
  let aux, aux_dirty = aux_closures cat in
  let store =
    Durable.Store.init ?policy ?snapshot_every ~obs:(obs_of obs cat) ~dir
      ~db:(Engine.database e)
      ~now:(fun () -> Engine.now e)
      ~ddl:(fun () -> Catalog.ddl_dump cat)
      ~aux ~aux_dirty ()
  in
  { dir; store }

(* Rebuild a fresh engine from the durable state in [dir].  The engine
   is *not* yet attached — a fuzzing harness may want to inspect the
   recovered state without opening a new WAL; call {!resume} to go
   live. *)
let recover ?obs ?stop_at_serial ~dir () =
  let e = Engine.create () in
  let cat = Engine.catalog e in
  let report =
    Durable.Store.recover ~obs:(obs_of obs cat) ?stop_at_serial ~dir
      ~db:(Engine.database e)
      ~on_ddl:(apply_ddl cat)
      ~on_now:(fun d -> Engine.set_now e d)
      ~on_aux:(on_aux cat) ()
  in
  (* The recovered entries were stamped against the writing engine's
     plan token; this engine replayed the same history but its version
     counters took a different path (replay has no rollbacks or temp
     churn).  The data is identical, so re-stamp rather than discard. *)
  Calibration.stamp_all cat.Catalog.calibration (Catalog.plan_token cat);
  (e, report)

(* Attach after {!recover}: truncate the torn/corrupt WAL tail and
   append from the last intact record, serial numbering continuous. *)
let resume ?policy ?snapshot_every ?obs ~dir (e : Engine.t) report =
  let cat = Engine.catalog e in
  let aux, aux_dirty = aux_closures cat in
  let store =
    Durable.Store.resume ?policy ?snapshot_every ~obs:(obs_of obs cat) ~dir
      ~db:(Engine.database e)
      ~now:(fun () -> Engine.now e)
      ~ddl:(fun () -> Catalog.ddl_dump cat)
      ~aux ~aux_dirty report
  in
  (* Resume may have truncated a torn tail that carried the latest aux
     records; mark the calibration dirty so the next commit group (or
     detach) re-flushes the full state. *)
  if Calibration.size cat.Catalog.calibration > 0 then
    Calibration.mark_dirty cat.Catalog.calibration;
  { dir; store }

(* Recover-or-init: the CLI's --db-dir semantics.  An existing store is
   recovered and resumed; an empty or absent directory starts fresh. *)
let open_dir ?policy ?snapshot_every ?obs ~dir () =
  if Durable.Store.exists dir then begin
    let e, report = recover ?obs ~dir () in
    let h = resume ?policy ?snapshot_every ?obs ~dir e report in
    (e, h, Some report)
  end
  else begin
    let e = Engine.create () in
    let h = attach ?policy ?snapshot_every ?obs ~dir e in
    (e, h, None)
  end

let snapshot h = Durable.Store.snapshot h.store

let detach h =
  (* Flush the full calibration state before closing so a clean
     shutdown never loses learned timings, even mid-commit-group. *)
  Durable.Store.flush_aux h.store;
  Durable.Store.detach h.store
let store h = h.store
let sync h = Durable.Store.sync h.store
let serial h = Durable.Store.serial h.store
let is_degraded h = Durable.Store.is_degraded h.store

(* Operator surface: scrub / hot backup / point-in-time restore. *)

let scrub ?obs ?quarantine ~dir () = Durable.Store.scrub ?obs ?quarantine ~dir ()
let backup h ~target = Durable.Store.backup h.store ~target
let backup_dir ?obs ~dir ~target () = Durable.Store.backup_dir ?obs ~dir ~target ()

(* Point-in-time restore: recover [archive] frozen at [as_of_serial]
   (latest committed state when omitted) and materialize the result as
   a FRESH store in [dir].  The archive is never written to — a botched
   restore can always be re-run from the same bytes. *)
let restore ?policy ?snapshot_every ?obs ?as_of_serial ~archive ~dir () =
  let e = Engine.create () in
  let cat = Engine.catalog e in
  let report =
    Durable.Store.recover ~obs:(obs_of obs cat) ?stop_at_serial:as_of_serial
      ~dir:archive ~db:(Engine.database e)
      ~on_ddl:(apply_ddl cat)
      ~on_now:(fun d -> Engine.set_now e d)
      ~on_aux:(on_aux cat) ()
  in
  Calibration.stamp_all cat.Catalog.calibration (Catalog.plan_token cat);
  (match as_of_serial with
  | Some n when report.Durable.Store.last_serial <> n ->
      Taupsm_error.raise_error Taupsm_error.Durability
        "archive cannot restore to commit %d: replay reached serial %d \
         (stop=%s)"
        n report.Durable.Store.last_serial report.Durable.Store.stop
  | _ -> ());
  let h = attach ?policy ?snapshot_every ?obs ~dir e in
  (e, h, report)

let report_to_string (r : Durable.Store.report) =
  Printf.sprintf
    "recovered snapshot %d + %d commit(s) (%d record(s), %d byte(s), \
     stop=%s, serial=%d%s) in %.3fs"
    r.Durable.Store.snapshot_id r.Durable.Store.commits_replayed
    r.Durable.Store.records_scanned r.Durable.Store.bytes_scanned
    r.Durable.Store.stop r.Durable.Store.last_serial
    ((if r.Durable.Store.snapshots_skipped > 0 then
        Printf.sprintf ", %d generation(s) skipped"
          r.Durable.Store.snapshots_skipped
      else "")
    ^
    if r.Durable.Store.wal_generation > r.Durable.Store.snapshot_id then
      Printf.sprintf ", chained to wal generation %d"
        r.Durable.Store.wal_generation
    else "")
    r.Durable.Store.seconds
