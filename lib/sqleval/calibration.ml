(* Learned strategy calibration: per-(statement, context-bucket,
   size-class) exponential moving averages of measured MAX and PERST
   wall times, recorded by the stratum's adaptive chooser.

   The table is keyed by an opaque statement fingerprint (the stratum
   digests the pretty-printed statement), a context-length bucket and a
   size-class tag — so one entry covers re-executions of the same
   statement shape over comparable contexts and data volumes.  Each
   entry is stamped with the catalog's plan-cache token: DDL or an
   option flip bumps the token and the stale entry is treated as absent
   (and reset on the next write), reusing the plan cache's invalidation
   discipline instead of inventing a parallel one.

   Persistence: {!save} serializes the whole table as one little-endian
   blob (format version byte first) that rides in the durable store as
   a named aux record; {!load} replaces the table from a blob, silently
   loading nothing from an unparseable one — calibration is advisory,
   so a corrupt blob must never fail recovery.  After recovery the
   token components (generation, version) differ from the recording
   session even though the data is identical, so {!stamp_all} re-stamps
   every entry with the post-recovery token. *)

type arm = { mutable ema : float; mutable runs : int }

type entry = {
  mutable token : int * int * int;  (* Catalog.plan_token at last write *)
  max_arm : arm;
  perst_arm : arm;
  mutable cm_choice : int option;
      (* cached cost-model verdict (0 = MAX, 1 = PERST), valid under
         [token] — saves re-running table statistics on every decide *)
}

type t = {
  tbl : (string * int * int, entry) Hashtbl.t;
      (* (statement fingerprint, context bucket, size tag) *)
  mutable dirty : bool;
  m : Mutex.t;
}

(* EMA smoothing: recent runs dominate (the data keeps growing under
   DML) without a single noisy run flipping the choice. *)
let alpha = 0.3

let create () = { tbl = Hashtbl.create 16; dirty = false; m = Mutex.create () }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Context-length buckets: a week (the §VII-F "short" class), a month,
   a year, unbounded — matching where the MAX/PERST break-evens move. *)
let bucket_of_days d =
  if d <= 7 then 0 else if d <= 31 then 1 else if d <= 366 then 2 else 3

let fresh_arm () = { ema = 0.0; runs = 0 }

let find_or_create t key token =
  match Hashtbl.find_opt t.tbl key with
  | Some e when e.token = token -> e
  | Some e ->
      (* stale under the plan-cache token: DDL or an option flip since
         the entry was written — start over *)
      e.token <- token;
      e.max_arm.ema <- 0.0;
      e.max_arm.runs <- 0;
      e.perst_arm.ema <- 0.0;
      e.perst_arm.runs <- 0;
      e.cm_choice <- None;
      e
  | None ->
      let e =
        {
          token;
          max_arm = fresh_arm ();
          perst_arm = fresh_arm ();
          cm_choice = None;
        }
      in
      Hashtbl.replace t.tbl key e;
      e

let arm_of e = function 0 -> e.max_arm | _ -> e.perst_arm

(* Record a measured run of [arm] (0 = MAX, 1 = PERST). *)
let record t ~key ~token ~arm ~seconds =
  locked t (fun () ->
      let e = find_or_create t key token in
      let a = arm_of e arm in
      a.ema <-
        (if a.runs = 0 then seconds
         else (alpha *. seconds) +. ((1.0 -. alpha) *. a.ema));
      a.runs <- a.runs + 1;
      t.dirty <- true)

(* The measured verdict: [Some (max_ema, perst_ema)] once BOTH arms
   have at least one valid-token run — before that the chooser falls
   back to the cost model. *)
let measured t ~key ~token =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.token = token && e.max_arm.runs > 0 && e.perst_arm.runs > 0
        ->
          Some (e.max_arm.ema, e.perst_arm.ema)
      | _ -> None)

let runs t ~key ~token =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.token = token -> (e.max_arm.runs, e.perst_arm.runs)
      | _ -> (0, 0))

(* Cached cost-model verdict under [token] (0 = MAX, 1 = PERST). *)
let cm_cached t ~key ~token =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.token = token -> e.cm_choice
      | _ -> None)

let set_cm t ~key ~token choice =
  locked t (fun () ->
      let e = find_or_create t key token in
      e.cm_choice <- Some choice;
      t.dirty <- true)

(* Re-stamp every entry after recovery: the recovered catalog counts
   its generation and version from scratch, but the data state is
   identical to what the entries measured, so the knowledge is valid —
   only the stamp needs refreshing. *)
let stamp_all t token =
  locked t (fun () -> Hashtbl.iter (fun _ e -> e.token <- token) t.tbl)

let size t = locked t (fun () -> Hashtbl.length t.tbl)
let is_dirty t = t.dirty
let clear_dirty t = t.dirty <- false
let mark_dirty t = t.dirty <- true

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.dirty <- false)

(* Deep content copy (for {!Catalog.copy} / read views): the copy's
   knowledge starts as a snapshot of the source's and diverges freely —
   shared mutable calibration across engine copies would leak one
   run's measurements into another's replay. *)
let copy_into src =
  let dst = create () in
  locked src (fun () ->
      Hashtbl.iter
        (fun k e ->
          Hashtbl.replace dst.tbl k
            {
              token = e.token;
              max_arm = { ema = e.max_arm.ema; runs = e.max_arm.runs };
              perst_arm = { ema = e.perst_arm.ema; runs = e.perst_arm.runs };
              cm_choice = e.cm_choice;
            })
        src.tbl);
  dst

(* ------------------------------------------------------------------ *)
(* Blob format (little-endian, version byte first)                     *)
(* ------------------------------------------------------------------ *)

let blob_version = 1

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let w_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let w_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

exception Bad_blob

type cursor = { s : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.s then raise Bad_blob

let r_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let r_i64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let r_f64 c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c =
  let n = r_u32 c in
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let save t =
  locked t (fun () ->
      let b = Buffer.create 256 in
      w_u8 b blob_version;
      w_u32 b (Hashtbl.length t.tbl);
      (* sorted by key so identical tables serialize identically —
         byte-stable blobs keep crash-fuzz golden comparisons quiet *)
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun ((fp, bkt, sz), e) ->
             w_str b fp;
             w_u8 b bkt;
             w_u8 b sz;
             let g, v, o = e.token in
             w_i64 b g;
             w_i64 b v;
             w_i64 b o;
             w_f64 b e.max_arm.ema;
             w_u32 b e.max_arm.runs;
             w_f64 b e.perst_arm.ema;
             w_u32 b e.perst_arm.runs;
             match e.cm_choice with
             | None -> w_u8 b 255
             | Some c -> w_u8 b c);
      Buffer.contents b)

(* Replace the table from a blob.  Unknown version or any parse failure
   loads nothing: calibration is advisory and must never fail recovery. *)
let load t blob =
  match
    let c = { s = blob; pos = 0 } in
    if r_u8 c <> blob_version then raise Bad_blob;
    let n = r_u32 c in
    let entries = ref [] in
    for _ = 1 to n do
      let fp = r_str c in
      let bkt = r_u8 c in
      let sz = r_u8 c in
      let g = r_i64 c in
      let v = r_i64 c in
      let o = r_i64 c in
      let max_ema = r_f64 c in
      let max_runs = r_u32 c in
      let perst_ema = r_f64 c in
      let perst_runs = r_u32 c in
      let cm = match r_u8 c with 255 -> None | x -> Some x in
      entries :=
        ( (fp, bkt, sz),
          {
            token = (g, v, o);
            max_arm = { ema = max_ema; runs = max_runs };
            perst_arm = { ema = perst_ema; runs = perst_runs };
            cm_choice = cm;
          } )
        :: !entries
    done;
    if c.pos <> String.length blob then raise Bad_blob;
    !entries
  with
  | exception Bad_blob -> ()
  | entries ->
      locked t (fun () ->
          Hashtbl.reset t.tbl;
          List.iter (fun (k, e) -> Hashtbl.replace t.tbl k e) entries;
          t.dirty <- false)

(* One-line summary for EXPLAIN and the REPL. *)
let summary t =
  locked t (fun () ->
      let n = Hashtbl.length t.tbl in
      let measured =
        Hashtbl.fold
          (fun _ e acc ->
            if e.max_arm.runs > 0 && e.perst_arm.runs > 0 then acc + 1 else acc)
          t.tbl 0
      in
      Printf.sprintf "%d entr%s (%d with both arms measured)" n
        (if n = 1 then "y" else "ies")
        measured)
