(** The conventional SQL/PSM engine facade.

    This is the layer {e below} the temporal stratum: it evaluates
    conventional SQL and PSM over an in-memory catalog and knows nothing
    of temporal semantics.  Temporal tables are ordinary tables whose
    trailing columns are [begin_time]/[end_time] (flagged in the
    schema); the stratum (lib/core) transforms temporal statements into
    the conventional ones this engine runs. *)

type t

val default_now : Sqldb.Date.t

val create : ?now:Sqldb.Date.t -> unit -> t
(** A fresh engine.  [now] is the session's CURRENT_DATE (default
    2011-01-01), settable for reproducible current-semantics tests. *)

val of_catalog : ?now:Sqldb.Date.t -> Catalog.t -> t
(** Wrap an existing catalog — typically a {!Catalog.read_view} of a
    snapshot published with {!Catalog.publish} — in an engine facade,
    pinning the session clock at [now]. *)

val catalog : t -> Catalog.t
val database : t -> Sqldb.Database.t

val guards : t -> Guard.t
(** The catalog's resource guard: tune limits (deadline, row budget,
    loop cap, recursion depth) and the atomic / PERST-fallback switches
    in place. *)

val set_now : t -> Sqldb.Date.t -> unit
val now : t -> Sqldb.Date.t

val copy : t -> t
(** Deep copy: storage duplicated, ASTs shared.  Used to evaluate the
    same workload under several strategies without interference. *)

val exec_stmt :
  ?tt_mode:Eval.tt_mode -> t -> Sqlast.Ast.stmt -> Eval.exec_result
(** Execute one conventional statement (AST form).  [tt_mode] selects
    the transaction-time reading mode: the current state (default), the
    state AS OF an instant, or all recorded rows. *)

val exec : t -> string -> Eval.exec_result
(** Parse and execute one conventional statement. *)

val exec_script : t -> string -> unit
(** Execute a ';'-separated script of conventional statements.  Raises
    {!Eval.Sql_error} if a statement carries a temporal modifier — those
    belong to the stratum. *)

val query : t -> string -> Result_set.t
(** Evaluate a query and return its rows; raises {!Eval.Sql_error} on a
    non-query statement. *)

val query_stmt : t -> Sqlast.Ast.query -> Result_set.t

val exec_counting_calls :
  ?tt_mode:Eval.tt_mode -> t -> Sqlast.Ast.stmt -> Eval.exec_result * int
(** Execute and report the number of stored-routine invocations — the
    cost driver the paper's Figure 7 visualizes as asterisks. *)
