(* Memoized constant periods with incremental maintenance.

   The MAX transformation's per-statement prep recomputes the event
   point set (taupsm_ts) and the constant periods (taupsm_cp) from
   scratch on every execution.  This module keeps, per base temporal
   table, the multiset of its begin/end event points, tagged with the
   {!Sqldb.Table.version} it was scanned at — so a merge-then-query
   workload pays one scan per table and then only boundary deltas.

   Validity is layered exactly like the stratum's plan cache:

   - a GLOBAL token (catalog generation, database version) guards
     against DDL: any CREATE/DROP — including period-column or
     temporal-constraint changes, which can only happen through
     re-creation since there is no ALTER — bumps the database version
     and empties the memo wholesale;
   - a PER-TABLE version stamp guards against DML: a table mutated
     outside the merge planner's {!note_write} protocol (sequenced
     splicing, plain DML, an undo rollback — {!Sqldb.Table.version}
     bumps on every mutation and is never rewound) fails the stamp
     check and is rescanned.

   {!note_write} is the incremental path: the merge planner knows
   exactly which valid-time boundary points its statement adds and
   removes, so it splices them into the multiset and advances the
   stamp, keeping the memo warm across write/read alternation.

   Only non-transactional base tables are memoized (the caller gates
   eligibility): tt-closed rows stay physically present in a
   transactional table, so a raw point scan would disagree with the
   tt-filtered taupsm_ts; and a temporary table re-created with an
   identical schema does not bump the database version while its fresh
   {!Sqldb.Table.version} counter could collide with the stale stamp. *)

module Database = Sqldb.Database
module Table = Sqldb.Table
module Schema = Sqldb.Schema
module Value = Sqldb.Value

type entry = {
  mutable tversion : int;  (* Table.version at last scan/splice *)
  points : (int, int) Hashtbl.t;  (* event point -> multiplicity *)
}

type t = {
  mutable token : (int * int) option;  (* (generation, db version) *)
  tables : (string, entry) Hashtbl.t;  (* lowercased base-table name *)
  mutable revision : int;
      (* bumped on every point-set change; keys the result cache so any
         table rescan or splice invalidates derived period lists *)
  results : (string * int * int * int, (int * int) list) Hashtbl.t;
      (* (sorted table names, bt, et, revision) -> period pairs *)
  mutable hits : int;
  mutable rescans : int;
  mutable splices : int;
  m : Mutex.t;
}

let create () =
  {
    token = None;
    tables = Hashtbl.create 8;
    revision = 0;
    results = Hashtbl.create 16;
    hits = 0;
    rescans = 0;
    splices = 0;
    m = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let invalidate t =
  locked t (fun () ->
      t.token <- None;
      Hashtbl.reset t.tables;
      Hashtbl.reset t.results;
      t.revision <- t.revision + 1)

(* Full rescan of one table's begin/end point multiset. *)
let scan_table tbl (e : entry) =
  let schema = Table.schema tbl in
  let bi = Schema.begin_index schema and ei = Schema.end_index schema in
  Hashtbl.reset e.points;
  let add d =
    Hashtbl.replace e.points d
      (1 + Option.value ~default:0 (Hashtbl.find_opt e.points d))
  in
  Table.iter
    (fun row ->
      (match row.(bi) with Value.Date d -> add d | _ -> ());
      match row.(ei) with Value.Date d -> add d | _ -> ())
    tbl;
  e.tversion <- tbl.Table.version

type result = { pairs : (int * int) list; cache_hit : bool; rescanned : int }

(* The constant periods of [tables] clipped to [bt, et): adjacent pairs
   of the sorted distinct event points strictly inside the context plus
   its two bounds — row-identical to the classic
   taupsm_ts/taupsm_constant_periods pipeline over the same tables. *)
let periods t ~generation ~db ~tables ~bt ~et : result =
  locked t (fun () ->
      let tok = (generation, Database.version db) in
      if t.token <> Some tok then begin
        Hashtbl.reset t.tables;
        Hashtbl.reset t.results;
        t.revision <- t.revision + 1;
        t.token <- Some tok
      end;
      let names =
        List.sort_uniq compare (List.map String.lowercase_ascii tables)
      in
      let rescanned = ref 0 in
      List.iter
        (fun name ->
          let tbl = Database.find_table_exn db name in
          match Hashtbl.find_opt t.tables name with
          | Some e when e.tversion = tbl.Table.version -> ()
          | existing ->
              let e =
                match existing with
                | Some e -> e
                | None ->
                    let e = { tversion = -1; points = Hashtbl.create 64 } in
                    Hashtbl.replace t.tables name e;
                    e
              in
              scan_table tbl e;
              incr rescanned;
              t.rescans <- t.rescans + 1;
              t.revision <- t.revision + 1)
        names;
      let key = (String.concat "," names, bt, et, t.revision) in
      match Hashtbl.find_opt t.results key with
      | Some pairs ->
          t.hits <- t.hits + 1;
          { pairs; cache_hit = true; rescanned = !rescanned }
      | None ->
          let acc = Hashtbl.create 64 in
          List.iter
            (fun name ->
              match Hashtbl.find_opt t.tables name with
              | Some e ->
                  Hashtbl.iter
                    (fun d _ -> if d > bt && d < et then Hashtbl.replace acc d ())
                    e.points
              | None -> ())
            names;
          let pts =
            bt :: et :: Hashtbl.fold (fun d () l -> d :: l) acc []
            |> List.sort_uniq compare
          in
          let rec pair = function
            | a :: (b :: _ as rest) -> (a, b) :: pair rest
            | [ _ ] | [] -> []
          in
          let pairs = if bt >= et then [] else pair pts in
          Hashtbl.replace t.results key pairs;
          { pairs; cache_hit = false; rescanned = !rescanned })

(* Incremental maintenance: the merge planner tells us which boundary
   points its statement added/removed on [table], and which version
   transition the write performed.  The splice applies only when the
   memo's stamp matches the pre-write version — anything else (a table
   never scanned, or mutated since) just drops the entry and lets the
   next {!periods} rescan. *)
let note_write t ~table ~from_version ~to_version ~added ~removed =
  locked t (fun () ->
      let name = String.lowercase_ascii table in
      match Hashtbl.find_opt t.tables name with
      | None -> ()
      | Some e when e.tversion <> from_version ->
          Hashtbl.remove t.tables name;
          t.revision <- t.revision + 1
      | Some e ->
          let ok = ref true in
          List.iter
            (fun d ->
              Hashtbl.replace e.points d
                (1 + Option.value ~default:0 (Hashtbl.find_opt e.points d)))
            added;
          List.iter
            (fun d ->
              match Hashtbl.find_opt e.points d with
              | Some 1 -> Hashtbl.remove e.points d
              | Some n when n > 1 -> Hashtbl.replace e.points d (n - 1)
              | _ ->
                  (* removing a point we never counted: the delta and
                     the scan disagree — drop the entry, never guess *)
                  ok := false)
            removed;
          if !ok then begin
            e.tversion <- to_version;
            t.splices <- t.splices + 1
          end
          else Hashtbl.remove t.tables name;
          t.revision <- t.revision + 1)

let stats t = locked t (fun () -> (t.hits, t.rescans, t.splices))

(* Test hook: the memoized point multiset of one table, sorted. *)
let table_points t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tables (String.lowercase_ascii name) with
      | None -> None
      | Some e ->
          Some
            (Hashtbl.fold (fun d n l -> (d, n) :: l) e.points []
            |> List.sort compare))
