(* The engine-level catalog: storage tables plus views and stored
   routines (which carry ASTs, so they live above lib/sqldb). *)

type routine_kind = Rfunction | Rprocedure

(* A native (OCaml-implemented) table function, installable by upper
   layers such as the temporal stratum.  [ntf_fn] receives the calling
   catalog and the evaluated argument values and produces rows matching
   [ntf_cols].  Taking the catalog as an argument (rather than closing
   over it) keeps natives valid across {!copy}. *)
type native_table_fun = {
  ntf_cols : string list;
  ntf_fn : t -> Sqldb.Value.t list -> Result_set.t;
}

(* An opaque extension slot on the catalog.  The plan-compilation layer
   (lib/compile, which depends on this library) hangs its closure cache
   here via [type ext += ...]; keeping the slot extensible avoids a
   dependency cycle while letting {!read_view} share one compiled-entry
   cache across all worker views of a statement. *)
and ext = ..

and t = {
  db : Sqldb.Database.t;
  views : (string, Sqlast.Ast.query) Hashtbl.t;
  routines : (string, routine_kind * Sqlast.Ast.routine) Hashtbl.t;
  native_table_funs : (string, native_table_fun) Hashtbl.t;
  options : options;
  obs : Trace.t;
      (* the engine-wide trace sink; the storage layer shares it (see
         {!Sqldb.Database.set_observe}).  Its enabled flag mirrors
         [options.observe] — read it through {!trace}, which syncs. *)
  mutable generation : int;
      (* counts *semantic* changes to views and routines; together with
         {!Sqldb.Database.version} it forms the stratum's plan-cache
         invalidation token.  Re-registering an identical definition —
         e.g. the MAX plan re-creating its own max_ routines on every
         execution — does not bump it, and neither does the *first*
         install of a stratum-derived routine (see
         {!register_derived_prefixes}): learned calibration must survive
         the rewrite machinery's own bookkeeping. *)
  mutable derived_epoch : int;
      (* counts installs of stratum-derived routines (names matching
         {!t.derived_prefixes}).  Part of the plan-cache token — a
         derived body can change when its source routine does — but
         deliberately absent from {!plan_token}, which stamps
         calibration entries and the constant-period memo. *)
  mutable derived_prefixes : string list;
      (* lowercase name prefixes that mark a routine as
         stratum-generated rather than user DDL; registered by the
         stratum at install time so this layer needs no knowledge of
         the naming convention *)
  plan_cache :
    ( string * Sqlast.Ast.temporal_stmt,
      ((int * int * int) * (int * int)) * Sqlast.Ast.stmt list )
    Hashtbl.t;
      (* transformed-plan cache, written and read by the stratum:
         (strategy tag, temporal statement) -> (validity token, plan).
         The token is {!plan_token} plus the database's temp-table
         epoch and the catalog's derived-routine epoch: temp shadowing
         and re-derived routine bodies change what a statement
         transforms into, so cached plans must react to them even
         though the durable-schema token does not — see
         {!cache_token}. *)
  mutable compile_ext : ext option;
      (* the plan-compilation layer's per-catalog closure cache (see
         {!ext}).  Shared by {!read_view} so parallel workers hit the
         parent's compiled entries; dropped by {!copy} (a deep copy is a
         different database). *)
  calibration : Calibration.t;
      (* learned MAX/PERST timings for the adaptive chooser, stamped
         with {!plan_token} per entry; persisted through the durable
         store as an aux blob (see {!Persist}).  {!copy} and
         {!read_view} take content copies — knowledge is inherited but
         never shared mutable across engines *)
  cp_memo : Cp_memo.t;
      (* memoized constant-period point sets, token-guarded by
         (generation, database version); always fresh in copies and
         views — it re-warms from the data in one scan *)
}

(* Evaluator switches, exposed for ablation experiments. *)
and options = {
  mutable hash_joins : bool;  (* opportunistic equi-join hash indexes *)
  mutable memoize_table_functions : bool;
      (* per-statement memoization of table-function results — the
         mechanism behind PERST's one-call-per-distinct-argument cost *)
  mutable temporal_index : bool;
      (* interval-indexed period-overlap scans of temporal tables:
         O(log n + k) stabbing queries instead of full scans *)
  mutable plan_caching : bool;
      (* stratum-level caching of transformed plans, keyed by
         (statement, strategy) and invalidated on DDL *)
  mutable observe : bool;
      (* execution tracing and metrics (spans, counters, events) into
         {!t.obs}; off by default — when off, instrumentation costs one
         flag test per site *)
  mutable jobs : int;
      (* worker domains for parallel sequenced (MAX) evaluation; 1 =
         serial.  Not part of the plan-cache fingerprint: the
         transformed plan is identical either way, only its execution
         is sliced *)
  mutable compile : bool;
      (* closure-compilation of hot physical plans (lib/compile): when
         on, the evaluator consults the installed compiler before
         interpreting a SELECT and runs a ready closure on coverage.
         Part of the plan-cache fingerprint — compiled entries are keyed
         by the same validity token *)
  mutable check_constraints : bool;
      (* enforcement of declared temporal integrity constraints
         (TEMPORAL PRIMARY KEY / FOREIGN KEY) at statement commit; off
         only for benchmark ablations.  Not part of the plan-cache
         fingerprint: checking happens after execution and never changes
         a transformed plan *)
  mutable memoize_constant_periods : bool;
      (* serve MAX's constant-period prep from the {!Cp_memo} cache
         (incrementally maintained under merge DML) instead of the
         per-statement taupsm_ts rebuild; changes the transformed plan's
         prep shape, so it IS part of the plan-cache fingerprint.  Off
         by default — the CLI and benches opt in *)
  mutable auto_strategy : bool;
      (* when no strategy is forced on a sequenced statement, let the
         stratum choose MAX vs PERST adaptively (§VII-F features, cost
         model, learned calibration) instead of defaulting to MAX.  Not
         part of the fingerprint: plans are cached under whichever
         strategy was chosen *)
  guards : Guard.t;
      (* resource limits (deadline, row budget, loop cap, recursion
         depth) plus the atomic-execution and PERST→MAX fallback
         switches; checked at evaluator step boundaries *)
}

exception No_such_routine of string
exception Duplicate_routine of string

let default_options () =
  {
    hash_joins = true;
    memoize_table_functions = true;
    temporal_index = true;
    plan_caching = true;
    observe = false;
    jobs = 1;
    compile = true;
    check_constraints = true;
    memoize_constant_periods = false;
    auto_strategy = false;
    guards = Guard.default ();
  }

let create () =
  let db = Sqldb.Database.create () in
  let obs = Trace.create () in
  Sqldb.Database.set_observe db obs;
  {
    db;
    views = Hashtbl.create 16;
    routines = Hashtbl.create 16;
    native_table_funs = Hashtbl.create 4;
    options = default_options ();
    obs;
    generation = 0;
    derived_epoch = 0;
    derived_prefixes = [];
    plan_cache = Hashtbl.create 16;
    compile_ext = None;
    calibration = Calibration.create ();
    cp_memo = Cp_memo.create ();
  }

(* The catalog's trace sink with its enabled flag synced to
   [options.observe].  Hot paths bind this once per statement and then
   test [Trace.enabled] directly. *)
let trace cat =
  Trace.set_enabled cat.obs cat.options.observe;
  cat.obs

let key = String.lowercase_ascii

(* View / routine registration journals an undo entry through the
   database's journal whenever the definition *semantically* changes, so
   a rolled-back execution also restores the catalog (and re-bumps the
   generation, keeping cached plans conservatively invalid).

   The same semantic-change condition gates durability: the definition
   is pretty-printed back to one conventional SQL statement and funneled
   through the database's WAL hook as an opaque [Catalog_ddl] event
   (recovery re-parses and re-registers it).  Identical re-registration
   — the MAX plan re-creating its own max_ routines on every execution —
   writes nothing, keeping the WAL proportional to real DDL. *)
let add_view cat name q =
  let k = key name in
  let prev = Hashtbl.find_opt cat.views k in
  if prev <> Some q then begin
    cat.generation <- cat.generation + 1;
    Undo_log.log
      (Sqldb.Database.undo cat.db)
      (fun () ->
        (match prev with
        | None -> Hashtbl.remove cat.views k
        | Some v -> Hashtbl.replace cat.views k v);
        cat.generation <- cat.generation + 1);
    Sqldb.Database.wal_emit cat.db
      (Sqldb.Wal_hook.Catalog_ddl
         (Sqlast.Pretty.stmt_to_string (Sqlast.Ast.Screate_view (name, q))))
  end;
  Hashtbl.replace cat.views k q

let find_view cat name = Hashtbl.find_opt cat.views (key name)

(* Every view and routine definition as one re-parseable conventional
   SQL statement — the catalog half of a durable snapshot.  Sorted {e
   by name} at the fold sites, so the output order is pinned however
   the hash tables happen to be populated (insertion order, a copy, a
   recovery replay); order between entries is otherwise irrelevant
   because registration never resolves references. *)
let sorted_by_name entries =
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries |> List.map snd

let ddl_dump cat =
  let views =
    Hashtbl.fold
      (fun name q acc ->
        ( name,
          Sqlast.Pretty.stmt_to_string (Sqlast.Ast.Screate_view (name, q)) )
        :: acc)
      cat.views []
    |> sorted_by_name
  in
  let routines =
    Hashtbl.fold
      (fun name (kind, r) acc ->
        let stmt =
          match kind with
          | Rfunction -> Sqlast.Ast.Screate_function r
          | Rprocedure -> Sqlast.Ast.Screate_procedure r
        in
        (name, Sqlast.Pretty.stmt_to_string stmt) :: acc)
      cat.routines []
    |> sorted_by_name
  in
  views @ routines

(* Tell the catalog which routine-name prefixes belong to the stratum's
   generated code.  Installing (or re-deriving) such a routine bumps
   {!t.derived_epoch} rather than {!t.generation}: the plan cache still
   invalidates, but calibration and the constant-period memo — stamped
   with {!plan_token} — keep their learning. *)
let register_derived_prefixes cat prefixes =
  cat.derived_prefixes <- List.map key prefixes

let is_derived_name cat k =
  List.exists (fun p -> String.starts_with ~prefix:p k) cat.derived_prefixes

let add_routine ?(replace = false) cat kind (r : Sqlast.Ast.routine) =
  let k = key r.Sqlast.Ast.r_name in
  if (not replace) && Hashtbl.mem cat.routines k then
    raise (Duplicate_routine r.Sqlast.Ast.r_name);
  let prev = Hashtbl.find_opt cat.routines k in
  if prev <> Some (kind, r) then begin
    let bump =
      if is_derived_name cat k then fun () ->
        cat.derived_epoch <- cat.derived_epoch + 1
      else fun () -> cat.generation <- cat.generation + 1
    in
    bump ();
    Undo_log.log
      (Sqldb.Database.undo cat.db)
      (fun () ->
        (match prev with
        | None -> Hashtbl.remove cat.routines k
        | Some x -> Hashtbl.replace cat.routines k x);
        bump ());
    let stmt =
      match kind with
      | Rfunction -> Sqlast.Ast.Screate_function r
      | Rprocedure -> Sqlast.Ast.Screate_procedure r
    in
    Sqldb.Database.wal_emit cat.db
      (Sqldb.Wal_hook.Catalog_ddl (Sqlast.Pretty.stmt_to_string stmt))
  end;
  Hashtbl.replace cat.routines k (kind, r)

let find_routine cat name = Hashtbl.find_opt cat.routines (key name)

let find_function cat name =
  match find_routine cat name with
  | Some (Rfunction, r) -> Some r
  | _ -> None

let find_procedure cat name =
  match find_routine cat name with
  | Some (Rprocedure, r) -> Some r
  | _ -> None

let find_routine_exn cat name =
  match find_routine cat name with
  | Some x -> x
  | None -> raise (No_such_routine name)

let routine_names cat =
  Hashtbl.fold (fun k _ acc -> k :: acc) cat.routines [] |> List.sort compare

let add_native_table_fun cat name ntf =
  Hashtbl.replace cat.native_table_funs (key name) ntf

let find_native_table_fun cat name =
  Hashtbl.find_opt cat.native_table_funs (key name)

(* ------------------------------------------------------------------ *)
(* Transformed-plan cache (read and written by the stratum)            *)
(* ------------------------------------------------------------------ *)

(* The evaluator options a transformed plan may have been specialized
   under, packed into one integer.  Flipping an option does not bump the
   catalog generation (nothing semantic changed), so without this
   fingerprint in the validity token the ablation benches — which
   toggle options on a live engine — could replay a plan built under
   the old options. *)
let options_fingerprint o =
  (if o.hash_joins then 1 else 0)
  lor (if o.memoize_table_functions then 2 else 0)
  lor (if o.temporal_index then 4 else 0)
  lor (if o.compile then 8 else 0)
  lor (if o.memoize_constant_periods then 16 else 0)

(* Validity token: a cached plan holds only as long as no view, routine
   or table definition has changed — and no evaluator option has been
   flipped — since it was transformed. *)
let plan_token cat =
  ( cat.generation,
    Sqldb.Database.version cat.db,
    options_fingerprint cat.options )

(* The plan cache additionally reacts to temp-table churn and to
   derived-routine installs: a session temp table can shadow a base
   table, and a re-derived max_/ps_ routine body can change what a
   statement transforms into.  Calibration stamps and the
   constant-period memo deliberately use the narrower {!plan_token} —
   artifacts created by the rewrite machinery itself must not
   invalidate learning. *)
let cache_token cat =
  (plan_token cat, (Sqldb.Database.temp_epoch cat.db, cat.derived_epoch))

let find_plan cat key =
  if not cat.options.plan_caching then None
  else begin
    let t = trace cat in
    match Hashtbl.find_opt cat.plan_cache key with
    | Some (token, plan) when token = cache_token cat ->
        if Trace.enabled t then begin
          Trace.count t "plan_cache.hit" 1;
          Trace.event t "plan-cache" (Printf.sprintf "hit strategy=%s" (fst key))
        end;
        Some plan
    | stale ->
        if Trace.enabled t then begin
          Trace.count t "plan_cache.miss" 1;
          Trace.event t "plan-cache"
            (Printf.sprintf "miss strategy=%s%s" (fst key)
               (if stale = None then "" else " (invalidated)"))
        end;
        None
  end

let store_plan cat key plan =
  if cat.options.plan_caching then
    Hashtbl.replace cat.plan_cache key (cache_token cat, plan)

(* Deep copy: storage is copied; views/routines (immutable ASTs) and
   natives (parameterized over the catalog) are shared.  The plan cache
   starts empty: its validity token is tied to this catalog's own
   version counters. *)
let copy cat =
  let db = Sqldb.Database.copy cat.db in
  let obs = Trace.create () in
  Sqldb.Database.set_observe db obs;
  {
    db;
    views = Hashtbl.copy cat.views;
    routines = Hashtbl.copy cat.routines;
    native_table_funs = Hashtbl.copy cat.native_table_funs;
    (* fresh Guard: copies must not share running guard state *)
    options = { cat.options with guards = Guard.copy cat.options.guards };
    obs;
    generation = cat.generation;
    derived_epoch = cat.derived_epoch;
    derived_prefixes = cat.derived_prefixes;
    plan_cache = Hashtbl.create 16;
    compile_ext = None;
    calibration = Calibration.copy_into cat.calibration;
    cp_memo = Cp_memo.create ();
  }

(* A read-only snapshot view for parallel workers and serving sessions:
   storage becomes a {!Sqldb.Database.read_view} (shared row vectors, no
   per-row copy, no obs/undo/wal), views/routines/natives become
   *private hashtable copies* — the ASTs themselves are shared and
   immutable, but full statement execution re-registers the stratum's
   own max_ routines per execution, and concurrent views writing into a
   shared registry would race — the guard is fresh (each view tracks its
   own budgets) and — unlike {!copy} — both version counters AND the
   compiled-closure cache are preserved, so a view's plan-cache and
   compiled-entry lookups hit the parent's warm entries (the compiled
   store is mutex-guarded).  Sound only while the underlying database is
   not mutated; views of a {!publish}ed snapshot are safe forever. *)
let read_view cat =
  let db = Sqldb.Database.read_view cat.db in
  let obs = Trace.create () in
  Sqldb.Database.set_observe db obs;
  {
    db;
    views = Hashtbl.copy cat.views;
    routines = Hashtbl.copy cat.routines;
    native_table_funs = Hashtbl.copy cat.native_table_funs;
    options = { cat.options with guards = Guard.copy cat.options.guards };
    obs;
    generation = cat.generation;
    derived_epoch = cat.derived_epoch;
    derived_prefixes = cat.derived_prefixes;
    plan_cache = Hashtbl.create 16;
    compile_ext = cat.compile_ext;
    calibration = Calibration.copy_into cat.calibration;
    cp_memo = Cp_memo.create ();
  }

(* Publish an immutable snapshot of this catalog for concurrent readers:
   storage is {!Sqldb.Database.freeze}-d (O(tables) copy-on-write — the
   next write to each live table privatizes its row array, so the
   snapshot never sees a torn state), views/routines/natives are
   hashtable copies taken at publication time, and version counters are
   preserved.  The publisher must make the snapshot visible through an
   [Atomic.t] (release/acquire) before other domains read it; readers
   then take a {!read_view} of the snapshot per statement, which is safe
   indefinitely — unlike a read view of a live catalog. *)
let publish cat =
  {
    db = Sqldb.Database.freeze cat.db;
    views = Hashtbl.copy cat.views;
    routines = Hashtbl.copy cat.routines;
    native_table_funs = Hashtbl.copy cat.native_table_funs;
    options = { cat.options with guards = Guard.copy cat.options.guards };
    obs = Trace.null;
    generation = cat.generation;
    derived_epoch = cat.derived_epoch;
    derived_prefixes = cat.derived_prefixes;
    plan_cache = Hashtbl.create 16;
    compile_ext = cat.compile_ext;
    calibration = Calibration.copy_into cat.calibration;
    cp_memo = Cp_memo.create ();
  }
