type site = Table_mutation | Index_rebuild | Routine_call | Period_slice

let site_name = function
  | Table_mutation -> "table_mutation"
  | Index_rebuild -> "index_rebuild"
  | Routine_call -> "routine_call"
  | Period_slice -> "period_slice"

let all_sites = [| Table_mutation; Index_rebuild; Routine_call; Period_slice |]

type armed_point = { site : site; mutable countdown : int }

let state : armed_point option ref = ref None
let enabled = ref false
let has_fired = ref false

let arm ~site ~countdown =
  state := Some { site; countdown = max 1 countdown };
  enabled := true;
  has_fired := false

let mix seed =
  (* xorshift-multiply scrambler over OCaml's native int *)
  let z = seed + 0x1f123bb5159a55e5 in
  let z = (z lxor (z lsr 30)) * 0x27d4eb2f165667c5 in
  let z = (z lxor (z lsr 27)) * 0x2545f4914f6cdd1d in
  z lxor (z lsr 31)

let arm_seeded ~seed =
  let h = mix seed in
  let site = all_sites.(abs h mod Array.length all_sites) in
  let countdown = 1 + (abs (mix h) mod 8) in
  arm ~site ~countdown

let armed () =
  match !state with Some a -> Some (a.site, a.countdown) | None -> None

let disarm () =
  state := None;
  enabled := false

let fired () = !has_fired

let hit site =
  if !enabled then
    match !state with
    | Some a when a.site = site ->
        if a.countdown <= 1 then begin
          state := None;
          enabled := false;
          has_fired := true;
          Taupsm_error.raise_error Taupsm_error.Injected_fault
            "injected fault at %s" (site_name site)
        end
        else a.countdown <- a.countdown - 1
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Storage faults: syscall-level failures in the durable layer         *)
(* ------------------------------------------------------------------ *)

(* Unlike the engine-level sites above, these model the *filesystem*
   misbehaving: a write that returns ENOSPC or EIO, a write that
   persists only a prefix before failing, an fsync that silently does
   nothing, or a byte that flips on its way to (or back from) the
   platter.  The durable layer consults {!io_check} at every syscall
   it issues through [Durable.Io]; the armed point decides what that
   one syscall does.  One fault per arming, like the sites above, so a
   retry after the typed error runs clean. *)

type io_fault = Io_enospc | Io_eio | Io_short_write | Io_fsync_drop | Io_bit_flip

type io_site =
  | Wal_append
  | Wal_sync
  | Snapshot_write
  | Rotation
  | Recovery_read

let io_fault_name = function
  | Io_enospc -> "enospc"
  | Io_eio -> "eio"
  | Io_short_write -> "short_write"
  | Io_fsync_drop -> "fsync_drop"
  | Io_bit_flip -> "bit_flip"

let io_site_name = function
  | Wal_append -> "wal_append"
  | Wal_sync -> "wal_sync"
  | Snapshot_write -> "snapshot_write"
  | Rotation -> "rotation"
  | Recovery_read -> "recovery_read"

(* Which fault classes make sense at which site: write faults at the
   write sites, fsync faults at the sync site, read faults (EIO and
   bit rot surfacing on the read path) at recovery.  [arm_io_seeded]
   only draws from this matrix, so every seed names a physically
   possible failure. *)
let io_matrix =
  [|
    (Wal_append, Io_enospc);
    (Wal_append, Io_eio);
    (Wal_append, Io_short_write);
    (Wal_append, Io_bit_flip);
    (Snapshot_write, Io_enospc);
    (Snapshot_write, Io_eio);
    (Snapshot_write, Io_short_write);
    (Snapshot_write, Io_bit_flip);
    (Rotation, Io_enospc);
    (Rotation, Io_eio);
    (Wal_sync, Io_eio);
    (Wal_sync, Io_fsync_drop);
    (Recovery_read, Io_eio);
    (Recovery_read, Io_bit_flip);
  |]

type armed_io = {
  io_site : io_site;
  io_fault : io_fault;
  mutable io_countdown : int;
  io_salt : int;  (* deterministic bit-flip position / short-write cut *)
}

let io_state : armed_io option ref = ref None
let io_enabled = ref false
let io_has_fired = ref false
let fsync_drops = ref 0

let arm_io ?(salt = 0) ~site ~fault ~countdown () =
  io_state :=
    Some
      {
        io_site = site;
        io_fault = fault;
        io_countdown = max 1 countdown;
        io_salt = salt;
      };
  io_enabled := true;
  io_has_fired := false

let arm_io_seeded ~seed =
  let h = mix seed in
  let site, fault = io_matrix.(abs h mod Array.length io_matrix) in
  let h2 = mix h in
  let countdown = 1 + (abs h2 mod 6) in
  arm_io ~salt:(mix h2) ~site ~fault ~countdown ()

let io_armed () =
  match !io_state with
  | Some a -> Some (a.io_site, a.io_fault, a.io_countdown)
  | None -> None

let disarm_io () =
  io_state := None;
  io_enabled := false

let io_fired () = !io_has_fired

(* Consulted by [Durable.Io] before each syscall at [site].  [Some
   (fault, salt)] means this syscall misbehaves; the point disarms so
   exactly one syscall is affected per arming. *)
let io_check site =
  if not !io_enabled then None
  else
    match !io_state with
    | Some a when a.io_site = site ->
        if a.io_countdown <= 1 then begin
          io_state := None;
          io_enabled := false;
          io_has_fired := true;
          Some (a.io_fault, a.io_salt)
        end
        else begin
          a.io_countdown <- a.io_countdown - 1;
          None
        end
    | _ -> None

let fsync_dropped () = incr fsync_drops
let fsync_drop_count () = !fsync_drops

(* ------------------------------------------------------------------ *)
(* Crash points: simulated process death mid-durable-write             *)
(* ------------------------------------------------------------------ *)

(* Unlike the error sites above, a crash is not an exception the program
   under test may observe and recover from in-process: it models the
   machine dying with a possibly torn write on disk.  The durable layer
   funnels every WAL/snapshot write through {!crash_allowance}; when the
   armed byte budget runs out the writer persists only the permitted
   prefix of its buffer (a torn write) and raises {!Crash}, which the
   fuzzing harness catches *outside* the engine, discards all in-memory
   state, and then exercises recovery from the on-disk files. *)

exception Crash of string

(* [crash_point]: bytes of durable write still permitted, if armed. *)
let crash_point : int option ref = ref None
let crash_has_fired = ref false

let arm_crash ~at_bytes =
  crash_point := Some (max 0 at_bytes);
  crash_has_fired := false

let disarm_crash () = crash_point := None
let crash_armed () = !crash_point
let crash_fired () = !crash_has_fired

(* How many of [n] requested bytes may be written.  Returns [n] when no
   crash point is armed.  When the budget truncates the request, the
   caller must write exactly the returned prefix and then raise
   {!Crash} via {!crash_now} — the two-step shape lets the caller get
   the torn bytes onto disk first. *)
let crash_allowance n =
  match !crash_point with
  | None -> n
  | Some budget when n <= budget ->
      crash_point := Some (budget - n);
      n
  | Some budget ->
      crash_point := Some 0;
      budget

let crash_now ~site =
  crash_point := None;
  crash_has_fired := true;
  raise (Crash (Printf.sprintf "simulated crash during %s" site))
