type site = Table_mutation | Index_rebuild | Routine_call | Period_slice

let site_name = function
  | Table_mutation -> "table_mutation"
  | Index_rebuild -> "index_rebuild"
  | Routine_call -> "routine_call"
  | Period_slice -> "period_slice"

let all_sites = [| Table_mutation; Index_rebuild; Routine_call; Period_slice |]

type armed_point = { site : site; mutable countdown : int }

let state : armed_point option ref = ref None
let enabled = ref false
let has_fired = ref false

let arm ~site ~countdown =
  state := Some { site; countdown = max 1 countdown };
  enabled := true;
  has_fired := false

let mix seed =
  (* xorshift-multiply scrambler over OCaml's native int *)
  let z = seed + 0x1f123bb5159a55e5 in
  let z = (z lxor (z lsr 30)) * 0x27d4eb2f165667c5 in
  let z = (z lxor (z lsr 27)) * 0x2545f4914f6cdd1d in
  z lxor (z lsr 31)

let arm_seeded ~seed =
  let h = mix seed in
  let site = all_sites.(abs h mod Array.length all_sites) in
  let countdown = 1 + (abs (mix h) mod 8) in
  arm ~site ~countdown

let armed () =
  match !state with Some a -> Some (a.site, a.countdown) | None -> None

let disarm () =
  state := None;
  enabled := false

let fired () = !has_fired

let hit site =
  if !enabled then
    match !state with
    | Some a when a.site = site ->
        if a.countdown <= 1 then begin
          state := None;
          enabled := false;
          has_fired := true;
          Taupsm_error.raise_error Taupsm_error.Injected_fault
            "injected fault at %s" (site_name site)
        end
        else a.countdown <- a.countdown - 1
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Crash points: simulated process death mid-durable-write             *)
(* ------------------------------------------------------------------ *)

(* Unlike the error sites above, a crash is not an exception the program
   under test may observe and recover from in-process: it models the
   machine dying with a possibly torn write on disk.  The durable layer
   funnels every WAL/snapshot write through {!crash_allowance}; when the
   armed byte budget runs out the writer persists only the permitted
   prefix of its buffer (a torn write) and raises {!Crash}, which the
   fuzzing harness catches *outside* the engine, discards all in-memory
   state, and then exercises recovery from the on-disk files. *)

exception Crash of string

(* [crash_point]: bytes of durable write still permitted, if armed. *)
let crash_point : int option ref = ref None
let crash_has_fired = ref false

let arm_crash ~at_bytes =
  crash_point := Some (max 0 at_bytes);
  crash_has_fired := false

let disarm_crash () = crash_point := None
let crash_armed () = !crash_point
let crash_fired () = !crash_has_fired

(* How many of [n] requested bytes may be written.  Returns [n] when no
   crash point is armed.  When the budget truncates the request, the
   caller must write exactly the returned prefix and then raise
   {!Crash} via {!crash_now} — the two-step shape lets the caller get
   the torn bytes onto disk first. *)
let crash_allowance n =
  match !crash_point with
  | None -> n
  | Some budget when n <= budget ->
      crash_point := Some (budget - n);
      n
  | Some budget ->
      crash_point := Some 0;
      budget

let crash_now ~site =
  crash_point := None;
  crash_has_fired := true;
  raise (Crash (Printf.sprintf "simulated crash during %s" site))
