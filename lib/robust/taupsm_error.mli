(** Typed error taxonomy for the temporal stratum.

    Every layer (storage, evaluator, stratum, CLI) can raise and classify
    errors through a single structured type instead of bare [Failure] /
    [Invalid_argument] strings.  An error carries optional execution
    context: the routine being invoked, the statement being executed and
    the constant period being sliced when the error arose. *)

(** Which resource guard fired. *)
type resource = Deadline | Row_budget | Loop_iterations | Recursion_depth

type code =
  | Sql  (** runtime SQL failure (evaluation, constraint, cast) *)
  | Parse  (** lexer / parser failure *)
  | Semantic  (** static semantic analysis failure *)
  | Unknown_object  (** missing table / routine / column / query *)
  | Duplicate_object  (** name already bound *)
  | Unsupported  (** statement shape outside MAX / PERST coverage *)
  | Resource_exhausted of resource  (** a resource guard fired *)
  | Constraint_violation
      (** a temporal integrity constraint (TEMPORAL PRIMARY KEY /
          TEMPORAL FOREIGN KEY) rejected a statement at commit; the
          period field carries the offending valid-time interval *)
  | Injected_fault  (** deterministic fault-injection harness fired *)
  | Durability  (** WAL / snapshot corruption, unreadable durable state *)
  | Internal  (** invariant violation inside the engine itself *)

type t = {
  code : code;
  message : string;
  routine : string option;  (** routine being invoked, if any *)
  statement : string option;  (** statement kind being executed, if any *)
  period : (int * int) option;
      (** constant period being sliced, as days since 1970-01-01,
          half-open [b, e) *)
}

exception Error of t

val make :
  ?routine:string ->
  ?statement:string ->
  ?period:int * int ->
  code ->
  string ->
  t

val raise_error :
  ?routine:string ->
  ?statement:string ->
  ?period:int * int ->
  code ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [raise_error code fmt ...] raises {!Error} with a formatted message. *)

val code_string : code -> string
(** Stable machine-readable tag, e.g. ["resource.deadline"]. *)

val to_string : t -> string
(** One-line rendering:
    [taupsm error [code]: message (routine=.., statement=.., period=..)]. *)

val with_routine : string -> (unit -> 'a) -> 'a
(** Run a thunk; if it raises {!Error} with no routine context, re-raise
    with the routine field filled in.  Other exceptions pass through. *)

val with_period : int * int -> (unit -> 'a) -> 'a
(** Same as {!with_routine} for the period field. *)

val of_exn : exn -> t
(** Best-effort classification of an arbitrary exception.  [Error e]
    returns [e]; [Failure] / [Invalid_argument] map to {!Internal};
    anything else maps to {!Internal} with [Printexc.to_string].  Layers
    that know richer exception types should classify before falling back
    to this. *)
