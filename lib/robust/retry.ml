(* Retry with exponential backoff and jitter.  See retry.mli. *)

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  max_elapsed : float option;
}

let default =
  {
    max_attempts = 5;
    base_delay = 0.002;
    multiplier = 2.0;
    max_delay = 0.1;
    jitter = 0.5;
    max_elapsed = None;
  }

(* Process-global splitmix64-ish PRNG for jitter.  Races on the state
   under concurrent retries merely interleave the stream — jitter needs
   decorrelation, not reproducibility — but an [Atomic.t] keeps the
   updates from tearing.  Seeded from the wall clock once. *)
let prng_state =
  Atomic.make (Int64.of_float (Unix.gettimeofday () *. 1e6) |> Int64.to_int)

let next_bits () =
  let rec step () =
    let s = Atomic.get prng_state in
    let s' = s + 0x2E3779B97F4A7C15 in
    if Atomic.compare_and_set prng_state s s' then s' else step ()
  in
  let z = step () in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let default_rand bound =
  if bound <= 0. then 0.
  else float_of_int (next_bits ()) /. float_of_int max_int *. bound

(* A private, seeded jitter stream: same seed, same delays, so a fuzz
   failure involving backoff timing replays exactly.  Single-threaded
   by design — each serve-fuzz lane gets its own. *)
let seeded_rand ~seed =
  let state = ref seed in
  fun bound ->
    if bound <= 0. then 0.
    else begin
      let s = !state + 0x2E3779B97F4A7C15 in
      state := s;
      let z = (s lxor (s lsr 30)) * 0x3F58476D1CE4E5B9 in
      let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
      let z = (z lxor (z lsr 31)) land max_int in
      float_of_int z /. float_of_int max_int *. bound
    end

(* The jittered sleep before retry [attempt] (1-based): exponential in
   the attempt number, capped, then up to [jitter] of it randomized
   away so concurrent losers don't collide again in lock-step. *)
let delay_for p ~rand ~attempt =
  let d =
    p.base_delay *. (p.multiplier ** float_of_int (max 0 (attempt - 1)))
  in
  let d = Float.min d p.max_delay in
  let j = Float.max 0. (Float.min 1. p.jitter) in
  d -. rand (d *. j)

exception Gave_up of { attempts : int; elapsed : float; last : exn }

let run ?(policy = default) ?(rand = default_rand) ?(sleep = Unix.sleepf)
    ~retryable f =
  let started = Mono_clock.now () in
  let budget_left () =
    match policy.max_elapsed with
    | None -> true
    | Some b -> Mono_clock.now () -. started < b
  in
  let rec go attempt =
    match f () with
    | v -> v
    | exception e when retryable e ->
        if attempt >= policy.max_attempts || not (budget_left ()) then
          raise
            (Gave_up
               {
                 attempts = attempt;
                 elapsed = Mono_clock.now () -. started;
                 last = e;
               });
        sleep (delay_for policy ~rand ~attempt);
        go (attempt + 1)
  in
  go 1
