(** Deterministic fault injection.

    A single global fault point (the engine is single-threaded) can be
    armed at one of four sites with a countdown: the nth time execution
    passes that site, a typed [Injected_fault] error is raised and the
    point disarms (one fault per arming, so a rollback-and-retry runs
    clean).  When disarmed, [hit] costs one load-and-branch. *)

type site =
  | Table_mutation  (** start of any [Table] mutating operation *)
  | Index_rebuild  (** interval-index (re)build on version mismatch *)
  | Routine_call  (** entry of any routine invocation *)
  | Period_slice  (** per constant period / splice step in the stratum *)

val site_name : site -> string
val all_sites : site array

val arm : site:site -> countdown:int -> unit
(** Fire on the [countdown]-th hit of [site] (1 = next hit). *)

val arm_seeded : seed:int -> unit
(** Derive (site, countdown) deterministically from [seed] via a
    splitmix-style hash; used for seed sweeps. *)

val armed : unit -> (site * int) option
(** Currently armed point and remaining countdown, if any. *)

val disarm : unit -> unit
val fired : unit -> bool
(** Whether the last armed point has fired since arming. *)

val hit : site -> unit
(** Execution hook: raises [Taupsm_error.Error] with code
    [Injected_fault] when the armed countdown reaches zero. *)

(** {1 Crash points}

    Simulated process death during a durable write.  A crash point is a
    byte budget: the durable layer asks {!crash_allowance} before every
    WAL/snapshot write, persists only the permitted prefix (a torn
    write) and raises {!Crash} via {!crash_now} when the budget runs
    out.  The fuzzing harness catches [Crash] outside the engine,
    abandons all in-memory state — as a real crash would — and
    exercises recovery from the on-disk files. *)

exception Crash of string

val arm_crash : at_bytes:int -> unit
(** Permit exactly [at_bytes] further bytes of durable writing; the
    write that would exceed the budget is torn at the boundary. *)

val disarm_crash : unit -> unit
val crash_armed : unit -> int option
(** Remaining byte budget, if a crash point is armed. *)

val crash_fired : unit -> bool
(** Whether the last armed crash point has fired. *)

val crash_allowance : int -> int
(** [crash_allowance n] is how many of [n] requested bytes may be
    written ([n] itself when disarmed).  A caller receiving [k < n]
    must write exactly the [k]-byte prefix and then call {!crash_now}. *)

val crash_now : site:string -> 'a
(** Record the firing and raise {!Crash}. *)
