(** Deterministic fault injection.

    A single global fault point (the engine is single-threaded) can be
    armed at one of four sites with a countdown: the nth time execution
    passes that site, a typed [Injected_fault] error is raised and the
    point disarms (one fault per arming, so a rollback-and-retry runs
    clean).  When disarmed, [hit] costs one load-and-branch. *)

type site =
  | Table_mutation  (** start of any [Table] mutating operation *)
  | Index_rebuild  (** interval-index (re)build on version mismatch *)
  | Routine_call  (** entry of any routine invocation *)
  | Period_slice  (** per constant period / splice step in the stratum *)

val site_name : site -> string
val all_sites : site array

val arm : site:site -> countdown:int -> unit
(** Fire on the [countdown]-th hit of [site] (1 = next hit). *)

val arm_seeded : seed:int -> unit
(** Derive (site, countdown) deterministically from [seed] via a
    splitmix-style hash; used for seed sweeps. *)

val armed : unit -> (site * int) option
(** Currently armed point and remaining countdown, if any. *)

val disarm : unit -> unit
val fired : unit -> bool
(** Whether the last armed point has fired since arming. *)

val hit : site -> unit
(** Execution hook: raises [Taupsm_error.Error] with code
    [Injected_fault] when the armed countdown reaches zero. *)

(** {1 Storage faults}

    Syscall-level failures in the durable layer: ENOSPC / EIO from a
    write, a short write that persists only a prefix before failing, a
    silently dropped fsync, or a flipped bit on the write or read
    path.  [Durable.Io] consults {!io_check} before every syscall it
    issues; the armed point decides what that one syscall does.  One
    fault per arming (the point disarms when it fires), so a
    retry-after-typed-error runs clean. *)

type io_fault =
  | Io_enospc  (** the syscall fails with [ENOSPC] *)
  | Io_eio  (** the syscall fails with [EIO] *)
  | Io_short_write  (** a prefix persists, then the write fails *)
  | Io_fsync_drop  (** fsync silently does nothing (lying fsync) *)
  | Io_bit_flip  (** one bit flips in the data (silent corruption) *)

type io_site =
  | Wal_append  (** WAL record append *)
  | Wal_sync  (** WAL fsync (per-commit, per-batch, or explicit) *)
  | Snapshot_write  (** snapshot tmp-file body write *)
  | Rotation  (** snapshot rename / fresh-WAL create during rotation *)
  | Recovery_read  (** snapshot / WAL reads during recovery and scrub *)

val io_fault_name : io_fault -> string
val io_site_name : io_site -> string

val io_matrix : (io_site * io_fault) array
(** Every physically sensible (site, fault) pair; the seeded armer
    draws from this, and the disk-fuzz harness sweeps it. *)

val arm_io :
  ?salt:int -> site:io_site -> fault:io_fault -> countdown:int -> unit -> unit
(** Misbehave on the [countdown]-th syscall at [site] (1 = next).
    [salt] seeds the deterministic bit-flip position / short-write
    cut. *)

val arm_io_seeded : seed:int -> unit
(** Derive (site, fault, countdown, salt) deterministically from
    [seed], drawing from {!io_matrix}; used for fault sweeps. *)

val io_armed : unit -> (io_site * io_fault * int) option
val disarm_io : unit -> unit

val io_fired : unit -> bool
(** Whether the last armed storage fault has fired since arming. *)

val io_check : io_site -> (io_fault * int) option
(** Syscall hook: [Some (fault, salt)] when the armed countdown for
    [site] reaches zero — that one syscall misbehaves and the point
    disarms. *)

val fsync_dropped : unit -> unit
(** Record a silently dropped fsync (called by [Durable.Io]). *)

val fsync_drop_count : unit -> int
(** Total fsyncs dropped since process start. *)

(** {1 Crash points}

    Simulated process death during a durable write.  A crash point is a
    byte budget: the durable layer asks {!crash_allowance} before every
    WAL/snapshot write, persists only the permitted prefix (a torn
    write) and raises {!Crash} via {!crash_now} when the budget runs
    out.  The fuzzing harness catches [Crash] outside the engine,
    abandons all in-memory state — as a real crash would — and
    exercises recovery from the on-disk files. *)

exception Crash of string

val arm_crash : at_bytes:int -> unit
(** Permit exactly [at_bytes] further bytes of durable writing; the
    write that would exceed the budget is torn at the boundary. *)

val disarm_crash : unit -> unit
val crash_armed : unit -> int option
(** Remaining byte budget, if a crash point is armed. *)

val crash_fired : unit -> bool
(** Whether the last armed crash point has fired. *)

val crash_allowance : int -> int
(** [crash_allowance n] is how many of [n] requested bytes may be
    written ([n] itself when disarmed).  A caller receiving [k < n]
    must write exactly the [k]-byte prefix and then call {!crash_now}. *)

val crash_now : site:string -> 'a
(** Record the firing and raise {!Crash}. *)
