(** Deterministic fault injection.

    A single global fault point (the engine is single-threaded) can be
    armed at one of four sites with a countdown: the nth time execution
    passes that site, a typed [Injected_fault] error is raised and the
    point disarms (one fault per arming, so a rollback-and-retry runs
    clean).  When disarmed, [hit] costs one load-and-branch. *)

type site =
  | Table_mutation  (** start of any [Table] mutating operation *)
  | Index_rebuild  (** interval-index (re)build on version mismatch *)
  | Routine_call  (** entry of any routine invocation *)
  | Period_slice  (** per constant period / splice step in the stratum *)

val site_name : site -> string
val all_sites : site array

val arm : site:site -> countdown:int -> unit
(** Fire on the [countdown]-th hit of [site] (1 = next hit). *)

val arm_seeded : seed:int -> unit
(** Derive (site, countdown) deterministically from [seed] via a
    splitmix-style hash; used for seed sweeps. *)

val armed : unit -> (site * int) option
(** Currently armed point and remaining countdown, if any. *)

val disarm : unit -> unit
val fired : unit -> bool
(** Whether the last armed point has fired since arming. *)

val hit : site -> unit
(** Execution hook: raises [Taupsm_error.Error] with code
    [Injected_fault] when the armed countdown reaches zero. *)
