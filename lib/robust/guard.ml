type t = {
  mutable deadline_seconds : float option;
  mutable row_budget : int option;
  mutable loop_cap : int option;
  mutable depth_cap : int;
  mutable fallback_to_max : bool;
  mutable atomic : bool;
  mutable active : int;
  mutable expires_at : float;
  mutable rows_used : int;
  mutable ticks : int;
}

let default () =
  {
    deadline_seconds = None;
    row_budget = None;
    loop_cap = None;
    depth_cap = 200;
    fallback_to_max = false;
    atomic = true;
    active = 0;
    expires_at = infinity;
    rows_used = 0;
    ticks = 0;
  }

let copy g = { g with active = 0; expires_at = infinity; rows_used = 0; ticks = 0 }

let exhausted r fmt = Taupsm_error.raise_error (Resource_exhausted r) fmt

(* Deadlines are armed and checked against {!Mono_clock}, not the wall
   clock: a backward NTP step must not extend a deadline, and a forward
   step must not fire one that never elapsed. *)
let enter g =
  if g.active = 0 then begin
    g.rows_used <- 0;
    g.ticks <- 0;
    g.expires_at <-
      (match g.deadline_seconds with
      | None -> infinity
      | Some s -> Mono_clock.now () +. s)
  end;
  g.active <- g.active + 1

let leave g = if g.active > 0 then g.active <- g.active - 1

let check_deadline g =
  if g.expires_at < infinity && Mono_clock.now () > g.expires_at then
    exhausted Taupsm_error.Deadline "wall-clock deadline of %gs exceeded"
      (match g.deadline_seconds with Some s -> s | None -> 0.)

let step g =
  if g.expires_at < infinity then begin
    g.ticks <- g.ticks + 1;
    if g.ticks land 7 = 0 then check_deadline g
  end

let charge_rows g n =
  match g.row_budget with
  | None -> ()
  | Some b ->
      g.rows_used <- g.rows_used + n;
      if g.rows_used > b then
        exhausted Taupsm_error.Row_budget "row budget exceeded: %d > %d"
          g.rows_used b

let check_loop g iters =
  (match g.loop_cap with
  | Some c when iters > c ->
      exhausted Taupsm_error.Loop_iterations
        "loop iteration cap exceeded: %d > %d" iters c
  | _ -> ());
  check_deadline g

let check_depth g d =
  if d > g.depth_cap then
    exhausted Taupsm_error.Recursion_depth
      "routine recursion depth exceeded: %d > %d" d g.depth_cap;
  check_deadline g
