type resource = Deadline | Row_budget | Loop_iterations | Recursion_depth

type code =
  | Sql
  | Parse
  | Semantic
  | Unknown_object
  | Duplicate_object
  | Unsupported
  | Resource_exhausted of resource
  | Constraint_violation
  | Injected_fault
  | Durability
  | Internal

type t = {
  code : code;
  message : string;
  routine : string option;
  statement : string option;
  period : (int * int) option;
}

exception Error of t

let make ?routine ?statement ?period code message =
  { code; message; routine; statement; period }

let raise_error ?routine ?statement ?period code fmt =
  Printf.ksprintf
    (fun message -> raise (Error (make ?routine ?statement ?period code message)))
    fmt

let resource_string = function
  | Deadline -> "deadline"
  | Row_budget -> "row_budget"
  | Loop_iterations -> "loop_iterations"
  | Recursion_depth -> "recursion_depth"

let code_string = function
  | Sql -> "sql"
  | Parse -> "parse"
  | Semantic -> "semantic"
  | Unknown_object -> "unknown_object"
  | Duplicate_object -> "duplicate_object"
  | Unsupported -> "unsupported"
  | Resource_exhausted r -> "resource." ^ resource_string r
  | Constraint_violation -> "constraint_violation"
  | Injected_fault -> "injected_fault"
  | Durability -> "durability"
  | Internal -> "internal"

(* Days-since-epoch -> YYYY-MM-DD, proleptic Gregorian.  Duplicates the
   tiny civil-calendar conversion from [Sqldb.Date] because this library
   sits below sqldb in the dependency order. *)
let day_string d =
  let z = d + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let dd = doy - (((153 * mp) + 2) / 5) + 1 in
  let mm = if mp < 10 then mp + 3 else mp - 9 in
  let yy = if mm <= 2 then y + 1 else y in
  Printf.sprintf "%04d-%02d-%02d" yy mm dd

let to_string e =
  let ctx =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun r -> "routine=" ^ r) e.routine;
        Option.map (fun s -> "statement=" ^ s) e.statement;
        Option.map
          (fun (b, en) ->
            Printf.sprintf "period=[%s, %s)" (day_string b) (day_string en))
          e.period;
      ]
  in
  let ctx = if ctx = [] then "" else " (" ^ String.concat ", " ctx ^ ")" in
  Printf.sprintf "taupsm error [%s]: %s%s" (code_string e.code) e.message ctx

let with_routine name f =
  try f () with
  | Error e when e.routine = None -> raise (Error { e with routine = Some name })

let with_period p f =
  try f () with
  | Error e when e.period = None -> raise (Error { e with period = Some p })

let of_exn = function
  | Error e -> e
  | Failure m -> make Internal m
  | Invalid_argument m -> make Internal m
  | exn -> make Internal (Printexc.to_string exn)
