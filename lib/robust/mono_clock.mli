(** A monotonized, injectable time source.

    Readings are seconds from an arbitrary origin and never decrease,
    even when the underlying source (wall-clock by default) steps
    backward.  Used by {!Guard} deadlines and by the durable stratum's
    recovery-time measurements so neither is perturbed by clock skew. *)

val now : unit -> float
(** The current monotonized reading. *)

val set_source : (unit -> float) -> unit
(** Replace the underlying source (tests).  Resets the monotone
    history so the new source's scale takes effect immediately. *)

val use_wall_clock : unit -> unit
(** Restore the default [Unix.gettimeofday] source. *)
