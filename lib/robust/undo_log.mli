(** Closure-based undo journal with savepoints.

    One journal serves a whole database.  While the journal is active,
    mutating operations append undo closures; [rollback_to] replays them
    newest-first back to a savepoint.  Undo closures must restore state
    directly (never through the logging mutators) so that replay does not
    journal itself.

    The [serial] counter advances on every activation, savepoint,
    rollback and clear.  Callers that want at most one journal entry per
    savepoint scope (e.g. one table snapshot per statement) remember the
    serial at which they last logged and skip logging until it moves. *)

type t

type savepoint

val create : unit -> t

val null : t
(** Permanently inactive journal; [activate] on it is a no-op.  Used as
    the initial value for tables not yet attached to a database. *)

val is_active : t -> bool

val activate : t -> unit
(** Start journaling.  Bumps [serial]. *)

val deactivate : t -> unit

val clear : t -> unit
(** Drop all entries (commit).  Bumps [serial]. *)

val serial : t -> int

val savepoint : t -> savepoint
(** Mark the current journal position.  Bumps [serial] so per-scope
    logging dedup restarts inside the new scope. *)

val top : t -> savepoint
(** The empty-journal position: rolling back to [top] undoes
    everything. *)

val log : t -> (unit -> unit) -> unit
(** Append an undo closure.  No-op when inactive. *)

val rollback_to : t -> savepoint -> unit
(** Run and pop entries newest-first down to the savepoint.
    Bumps [serial]. *)
