type t = {
  mutable active : bool;
  mutable entries : (unit -> unit) list;
  mutable n : int;
  mutable serial : int;
  is_null : bool;
}

type savepoint = int

let create () =
  { active = false; entries = []; n = 0; serial = 0; is_null = false }

let null = { active = false; entries = []; n = 0; serial = 0; is_null = true }

let is_active t = t.active

let activate t =
  if not t.is_null then begin
    t.active <- true;
    t.serial <- t.serial + 1
  end

let deactivate t = t.active <- false

let clear t =
  t.entries <- [];
  t.n <- 0;
  t.serial <- t.serial + 1

let serial t = t.serial

let savepoint t =
  t.serial <- t.serial + 1;
  t.n

let top _ = 0

let log t undo =
  if t.active then begin
    t.entries <- undo :: t.entries;
    t.n <- t.n + 1
  end

let rollback_to t sp =
  while t.n > sp do
    match t.entries with
    | [] -> t.n <- sp
    | u :: rest ->
        t.entries <- rest;
        t.n <- t.n - 1;
        u ()
  done;
  t.serial <- t.serial + 1
