(** Resource guards for temporal execution.

    A guard holds configurable limits (wall-clock deadline, row budget,
    loop-iteration cap, routine recursion depth) plus the running state
    of the current outermost execution.  Checks are designed to be
    near-free when a limit is not armed: one branch on an immediate
    field.  When a limit is exceeded the guard raises a typed
    [Taupsm_error.Error] with code [Resource_exhausted]. *)

type t = {
  (* limits -- mutable so callers can tune a catalog's guard in place *)
  mutable deadline_seconds : float option;
  mutable row_budget : int option;  (** rows produced or inserted *)
  mutable loop_cap : int option;  (** iterations of a single PSM loop *)
  mutable depth_cap : int;  (** routine recursion depth *)
  mutable fallback_to_max : bool;
      (** retry a failed PERST execution under MAX (stratum-level) *)
  mutable atomic : bool;  (** journal + roll back failed executions *)
  (* running state of the current outermost execution *)
  mutable active : int;  (** execution nesting depth *)
  mutable expires_at : float;  (** absolute deadline; [infinity] = none *)
  mutable rows_used : int;
  mutable ticks : int;
}

val default : unit -> t
(** No deadline, no row budget, no loop cap, depth cap 200,
    no PERST fallback, atomic execution on. *)

val copy : t -> t
(** Same limits, fresh running state.  Used by [Catalog.copy] so engine
    copies never share guard state. *)

val enter : t -> unit
(** Begin a (possibly nested) guarded execution.  The outermost [enter]
    resets the row count and arms the absolute deadline against
    {!Mono_clock} (not the wall clock), so clock skew can neither fire
    a deadline early nor extend one. *)

val leave : t -> unit

val step : t -> unit
(** Statement-boundary check: amortised deadline test (every 8th tick
    while a deadline is armed, otherwise one float compare). *)

val check_deadline : t -> unit
(** Unamortised deadline test; called at loop iterations and routine
    entries where a stuck execution is most likely to live. *)

val charge_rows : t -> int -> unit
(** Charge [n] rows against the budget; raises when exceeded. *)

val check_loop : t -> int -> unit
(** [check_loop g iters] with the current iteration count of one loop. *)

val check_depth : t -> int -> unit
(** [check_depth g d] with the current routine recursion depth. *)
