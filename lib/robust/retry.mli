(** Retry with exponential backoff and jitter.

    The serving layer uses this for transient conditions — a full
    write-lane queue, a momentarily saturated listener — where failing
    immediately would shed load the system could absorb a few
    milliseconds later, but retrying in lock-step across sessions would
    just reproduce the collision.  Jitter decorrelates the retries.

    Everything nondeterministic is injectable ([rand], [sleep], the
    monotonic clock through {!Mono_clock}), so tests drive the policy
    deterministically. *)

type policy = {
  max_attempts : int;  (** total tries, including the first (>= 1) *)
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** backoff factor between consecutive retries *)
  max_delay : float;  (** per-retry cap on the computed delay, seconds *)
  jitter : float;
      (** fraction of the delay randomized away, [0, 1]: the actual
          sleep is uniform in [[d*(1-jitter), d]] *)
  max_elapsed : float option;
      (** overall budget: give up (re-raising the last error) once this
          much wall time has elapsed since the first attempt *)
}

val default : policy
(** 5 attempts, 2 ms base, ×2 backoff capped at 100 ms, 0.5 jitter, no
    overall budget. *)

val seeded_rand : seed:int -> float -> float
(** A fresh, private jitter stream derived from [seed]: same seed, same
    delay sequence, so retry timing replays deterministically.  Not
    safe to share across domains — make one per lane/session. *)

val delay_for : policy -> rand:(float -> float) -> attempt:int -> float
(** The jittered sleep before retry number [attempt] (1 = the first
    retry).  [rand bound] must return a uniform float in [[0, bound)].
    Exposed for tests. *)

exception Gave_up of { attempts : int; elapsed : float; last : exn }
(** Raised by {!run} when every attempt failed with a retryable error:
    carries the count, the elapsed seconds and the last error. *)

val run :
  ?policy:policy ->
  ?rand:(float -> float) ->
  ?sleep:(float -> unit) ->
  retryable:(exn -> bool) ->
  (unit -> 'a) ->
  'a
(** [run ~retryable f] calls [f], retrying per the policy while [f]
    raises an exception [retryable] accepts.  A non-retryable exception
    propagates immediately.  When attempts (or the elapsed budget) run
    out, {!Gave_up} is raised.  [rand] defaults to a process-global
    seeded PRNG; [sleep] to [Unix.sleepf]. *)
