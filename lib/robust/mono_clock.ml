(* A monotonized time source for deadlines and duration measurement.

   [Unix.gettimeofday] is wall-clock time: NTP steps and manual clock
   changes can move it backward (spuriously extending a deadline's
   baseline) or forward (firing deadlines that never elapsed in real
   time).  The stdlib exposes no CLOCK_MONOTONIC, so the next best
   guarantee is enforced here: readings never decrease.  A backward step
   in the source freezes the reported time until the source catches up,
   so an armed deadline can only ever fire *later* than the true
   monotonic instant — never earlier, and never twice.

   The source is injectable so tests can replay skew scenarios
   deterministically. *)

(* The clamp state is shared by every domain of a parallel region
   (per-domain guards arm and check deadlines against this clock), so
   it is advanced by compare-and-set.  [set_source] remains a
   test-only, single-domain affair. *)
let source : (unit -> float) ref = ref Unix.gettimeofday
let last = Atomic.make neg_infinity

let rec now () =
  let t = !source () in
  let l = Atomic.get last in
  if t <= l then l else if Atomic.compare_and_set last l t then t else now ()

let set_source f =
  source := f;
  (* A fresh source starts a fresh monotone history: without this, a
     test source counting from 0 would be pinned at the wall-clock
     epoch-seconds already observed. *)
  Atomic.set last neg_infinity

let use_wall_clock () = set_source Unix.gettimeofday
