(* The tracing core: hierarchical spans, named counters, value
   distributions, and a ring-buffered event log, behind a single
   [enabled] switch.

   This module sits *below* the whole stack (sqldb, sqleval, the
   stratum all emit into it), so it depends on nothing but the
   standard library and [unix] for the clock.

   Cost model: every entry point tests [t.enabled] first; when tracing
   is off, each call is one field load and a conditional branch and no
   allocation.  Callers that must build an event string are expected to
   guard with {!enabled} themselves so the formatting work is also
   skipped — see lib/sqleval/eval.ml for the idiom. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* A nondecreasing wall clock: [Unix.gettimeofday] clamped against the
   last value handed out, so span arithmetic (parent >= sum of
   children) cannot be broken by clock steps.  The clamp state is a
   single global shared by every trace sink — including the per-domain
   sinks of a parallel region — so it is an [Atomic] advanced by
   compare-and-set rather than a bare ref (a plain read-modify-write
   here would be a cross-domain data race). *)
let last_time = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let last = Atomic.get last_time in
  if t <= last then last
  else if Atomic.compare_and_set last_time last t then t
  else now ()

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_start : float;
  mutable sp_elapsed : float;  (* seconds; set when the span closes *)
  mutable sp_children : span list;  (* newest first while open; reversed on close *)
}

type event = {
  ev_seq : int;  (* position in the global emission order, from 0 *)
  ev_label : string;
  ev_detail : string;
}

type dist = {
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
}

type t = {
  mutable enabled : bool;
  is_null : bool;  (* the shared {!null} sink; can never be enabled *)
  mutable stack : span list;  (* open spans, innermost first *)
  mutable roots : span list;  (* closed top-level spans, newest first *)
  counters : (string, int ref) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
  ring : event option array;
  mutable ring_pos : int;  (* next write position *)
  mutable seq : int;  (* events ever emitted *)
}

let create ?(ring = 1024) ?(enabled = false) () =
  {
    enabled;
    is_null = false;
    stack = [];
    roots = [];
    counters = Hashtbl.create 32;
    dists = Hashtbl.create 8;
    ring = Array.make (max 1 ring) None;
    ring_pos = 0;
    seq = 0;
  }

(* The shared do-nothing sink: the default for storage objects created
   outside any engine.  [set_enabled] on it is ignored. *)
let null = { (create ~ring:1 ()) with is_null = true }

let enabled t = t.enabled
let set_enabled t b = if not t.is_null then t.enabled <- b

let reset t =
  t.stack <- [];
  t.roots <- [];
  Hashtbl.reset t.counters;
  Hashtbl.reset t.dists;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_pos <- 0;
  t.seq <- 0

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let count t name n =
  if t.enabled then
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.counters name (ref n)

let get_count t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counts t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Distributions                                                       *)
(* ------------------------------------------------------------------ *)

let record t name v =
  if t.enabled then
    match Hashtbl.find_opt t.dists name with
    | Some d ->
        d.d_count <- d.d_count + 1;
        d.d_sum <- d.d_sum +. v;
        if v < d.d_min then d.d_min <- v;
        if v > d.d_max then d.d_max <- v
    | None ->
        Hashtbl.replace t.dists name
          { d_count = 1; d_sum = v; d_min = v; d_max = v }

let get_dist t name = Hashtbl.find_opt t.dists name

let dists t =
  Hashtbl.fold (fun k d acc -> (k, d) :: acc) t.dists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let time t name f =
  if not t.enabled then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record t name (now () -. t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Events (ring buffer)                                                *)
(* ------------------------------------------------------------------ *)

let event t label detail =
  if t.enabled then begin
    t.ring.(t.ring_pos) <-
      Some { ev_seq = t.seq; ev_label = label; ev_detail = detail };
    t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
    t.seq <- t.seq + 1
  end

(* Retained events, oldest first. *)
let events t =
  let n = Array.length t.ring in
  let out = ref [] in
  for i = 0 to n - 1 do
    match t.ring.((t.ring_pos + n - 1 - i) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.sort (fun a b -> compare a.ev_seq b.ev_seq) !out

let events_emitted t = t.seq
let events_dropped t = max 0 (t.seq - Array.length t.ring)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_begin t name =
  if t.enabled then begin
    let sp =
      { sp_name = name; sp_start = now (); sp_elapsed = 0.0; sp_children = [] }
    in
    t.stack <- sp :: t.stack
  end

let span_end t =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | sp :: rest ->
        sp.sp_elapsed <- now () -. sp.sp_start;
        sp.sp_children <- List.rev sp.sp_children;
        t.stack <- rest;
        (match rest with
        | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> t.roots <- sp :: t.roots)

let with_span t name f =
  if not t.enabled then f ()
  else begin
    span_begin t name;
    Fun.protect ~finally:(fun () -> span_end t) f
  end

(* Closed top-level spans, oldest first.  Spans still open (a crash
   mid-span) are not reported. *)
let roots t = List.rev t.roots

(* ------------------------------------------------------------------ *)
(* Merging (parallel regions)                                          *)
(* ------------------------------------------------------------------ *)

(* Fold independently collected child sinks — one per domain of a
   parallel region, each written by a single domain — into [t],
   deterministically: children are absorbed in list order; counters are
   summed and distributions folded (both commutative, so the per-child
   table iteration order is immaterial); each child's events are
   replayed in its own emission order; and each child's closed
   top-level spans are re-rooted under a fresh span "<name>.<i>" whose
   elapsed time is their sum, attached to [t]'s innermost open span.
   Must be called after the domains have quiesced. *)
let absorb t ~name children =
  if t.enabled then
    List.iteri
      (fun i child ->
        Hashtbl.iter (fun k r -> count t k !r) child.counters;
        Hashtbl.iter
          (fun k d ->
            match Hashtbl.find_opt t.dists k with
            | Some d' ->
                d'.d_count <- d'.d_count + d.d_count;
                d'.d_sum <- d'.d_sum +. d.d_sum;
                if d.d_min < d'.d_min then d'.d_min <- d.d_min;
                if d.d_max > d'.d_max then d'.d_max <- d.d_max
            | None ->
                Hashtbl.replace t.dists k
                  {
                    d_count = d.d_count;
                    d_sum = d.d_sum;
                    d_min = d.d_min;
                    d_max = d.d_max;
                  })
          child.dists;
        List.iter (fun e -> event t e.ev_label e.ev_detail) (events child);
        let kids = roots child in
        let sp =
          {
            sp_name = Printf.sprintf "%s.%d" name i;
            sp_start =
              (match kids with k :: _ -> k.sp_start | [] -> now ());
            sp_elapsed =
              List.fold_left (fun a k -> a +. k.sp_elapsed) 0.0 kids;
            sp_children = kids;
          }
        in
        match t.stack with
        | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> t.roots <- sp :: t.roots)
      children

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_seconds s =
  if s >= 1.0 then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let rec span_lines ?(show_timings = true) ~indent sp =
  let pad = String.make (2 * indent) ' ' in
  let line =
    if show_timings then
      Printf.sprintf "%s%s  %s" pad sp.sp_name (pp_seconds sp.sp_elapsed)
    else Printf.sprintf "%s%s" pad sp.sp_name
  in
  line
  :: List.concat_map
       (span_lines ~show_timings ~indent:(indent + 1))
       sp.sp_children

(* A human-readable dump of everything recorded: spans, counters,
   distributions, and the retained tail of the event log.
   [show_timings:false] elides every wall-clock figure, leaving only
   deterministic output — the form golden tests pin. *)
let summary_to_string ?(show_timings = true) ?(with_events = true) t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match roots t with
  | [] -> ()
  | rs ->
      add "spans:";
      List.iter
        (fun sp ->
          List.iter (add "%s") (span_lines ~show_timings ~indent:1 sp))
        rs);
  (match counts t with
  | [] -> ()
  | cs ->
      add "counters:";
      List.iter (fun (k, v) -> add "  %-36s %d" k v) cs);
  (match dists t with
  | [] -> ()
  | ds when show_timings ->
      add "distributions:";
      List.iter
        (fun (k, d) ->
          add "  %-36s n=%d mean=%s min=%s max=%s" k d.d_count
            (pp_seconds (d.d_sum /. float_of_int (max 1 d.d_count)))
            (pp_seconds d.d_min) (pp_seconds d.d_max))
        ds
  | ds ->
      add "distributions:";
      List.iter (fun (k, d) -> add "  %-36s n=%d" k d.d_count) ds);
  (match events t with
  | es when with_events && es <> [] ->
      add "events (%d emitted, %d dropped):" (events_emitted t)
        (events_dropped t);
      List.iter (fun e -> add "  [%s] %s" e.ev_label e.ev_detail) es
  | _ -> ());
  Buffer.contents buf
