(* A log-bucketed histogram for latency distributions.  See histo.mli. *)

(* Geometric buckets from [lo] seconds upward, [per_octave] buckets per
   doubling: bucket boundaries are lo * 2^(i / per_octave), giving a
   worst-case quantile error of 2^(1/per_octave) - 1 (~19% at 4 per
   octave) — plenty for p50/p99 reporting — with a fixed small
   footprint.  Values below [lo] land in bucket 0; values beyond the
   last boundary land in the overflow bucket. *)
let lo = 1e-6
let per_octave = 4
let nbuckets = 1 + (per_octave * 30) (* lo .. lo * 2^30 (~1073 s) + overflow *)
let log2 = log 2.0

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    counts = Array.make (nbuckets + 1) 0;
    count = 0;
    sum = 0.;
    min = infinity;
    max = neg_infinity;
  }

let bucket_of v =
  if v <= lo then 0
  else
    let i = int_of_float (ceil (log (v /. lo) /. log2 *. float_of_int per_octave)) in
    if i < 0 then 0 else if i > nbuckets then nbuckets else i

(* Upper boundary of bucket [i] — the value reported for any quantile
   that lands in it, so reported quantiles never understate. *)
let bucket_upper i =
  if i >= nbuckets then infinity
  else lo *. (2.0 ** (float_of_int i /. float_of_int per_octave))

let add t v =
  let v = if Float.is_nan v then 0. else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0. else t.min
let max_value t = if t.count = 0 then 0. else t.max

(* The [q]-quantile (q in [0,1]) as the upper boundary of the bucket the
   rank falls in, clamped to the observed max so a sparsely-filled top
   bucket cannot report beyond reality (and the overflow bucket never
   reports infinity). *)
let quantile t q =
  if t.count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let acc = ref 0 and i = ref 0 in
    while !acc < rank && !i <= nbuckets do
      acc := !acc + t.counts.(!i);
      incr i
    done;
    let upper = bucket_upper (!i - 1) in
    Float.min upper t.max
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

(* Fold [src] into [dst] (bucket-wise add) — deterministic regardless of
   merge order, like {!Trace.absorb}. *)
let merge ~into:dst src =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.min < dst.min then dst.min <- src.min;
  if src.max > dst.max then dst.max <- src.max

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity

let summary_string t =
  if t.count = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.6f p50=%.6f p90=%.6f p99=%.6f max=%.6f"
      t.count (mean t) (p50 t) (p90 t) (p99 t) (max_value t)
