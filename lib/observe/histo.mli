(** A fixed-footprint log-bucketed histogram for latency distributions.

    {!Trace} dists record only count/sum/min/max; the serving layer also
    needs p50/p99 under sustained load.  Buckets are geometric (4 per
    doubling from 1 µs), so any reported quantile overstates the true
    one by at most ~19% and the whole structure is a small int array —
    mergeable across sessions deterministically, like
    {!Trace.absorb}.

    Not thread-safe: one writer at a time, or an external lock. *)

type t

val create : unit -> t
val add : t -> float -> unit
(** Record one observation, in seconds (any non-negative float works;
    NaN is treated as 0). *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: the upper boundary of the bucket
    holding the rank, clamped to the observed maximum.  0 when empty. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val merge : into:t -> t -> unit
(** Bucket-wise fold of the second histogram into [into]; order of a
    sequence of merges does not affect the result. *)

val clear : t -> unit

val summary_string : t -> string
(** One line: [n=... mean=... p50=... p90=... p99=... max=...]. *)
