(** Zero-dependency tracing core: hierarchical spans, named counters,
    value distributions, and a ring-buffered event log.

    One {!t} value is shared by a whole engine stack (storage,
    evaluator, stratum) and gated by a single {!enabled} flag.  When
    disabled, every entry point is one field load plus a branch — no
    allocation, no clock read — so instrumentation can stay compiled in
    permanently.  Callers that would allocate to {e build} an event
    string must guard on {!enabled} themselves.

    Thread-safety: a sink must only ever be written by one domain at a
    time.  Parallel regions give each domain a private sink and fold
    them into the parent afterwards with {!absorb}; the only shared
    state, the {!now} clock clamp, is advanced atomically. *)

(** {1 Clock} *)

val now : unit -> float
(** Wall-clock seconds, clamped to be nondecreasing across calls, so
    that a parent span's elapsed time is always at least the sum of its
    children's. *)

(** {1 Trace objects} *)

type t
(** A mutable trace sink. *)

val create : ?ring:int -> ?enabled:bool -> unit -> t
(** [create ()] makes a fresh sink.  [ring] is the event-log capacity
    (default 1024; older events are overwritten).  [enabled] defaults
    to [false]. *)

val null : t
(** A shared sink that can never be enabled: the default for storage
    objects not yet attached to an engine.  {!set_enabled} on it is a
    no-op. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Drop all recorded spans, counters, distributions and events.  The
    enabled flag is unchanged. *)

(** {1 Spans}

    Spans nest dynamically: a span opened while another is open becomes
    its child.  Use {!with_span} rather than the begin/end pair unless
    the region cannot be expressed as a closure. *)

type span = {
  sp_name : string;
  sp_start : float;
  mutable sp_elapsed : float;  (** seconds; set when the span closes *)
  mutable sp_children : span list;  (** in opening order once closed *)
}

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span named [name].  The span
    closes even if [f] raises.  When [t] is disabled this is exactly
    [f ()]. *)

val span_begin : t -> string -> unit
val span_end : t -> unit

val roots : t -> span list
(** Closed top-level spans, oldest first. *)

val absorb : t -> name:string -> t list -> unit
(** [absorb t ~name children] deterministically merges sinks collected
    independently (one per domain of a parallel region, each written by
    a single domain) into [t], in list order: counters are summed,
    distributions folded, events replayed in each child's emission
    order, and each child's top-level spans re-rooted under a span
    ["<name>.<i>"] attached to [t]'s innermost open span.  Call only
    after the writing domains have quiesced.  No-op when [t] is
    disabled. *)

(** {1 Counters} *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to counter [name] (created at 0). *)

val get_count : t -> string -> int
(** Current value; 0 for a counter never bumped. *)

val counts : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Distributions} *)

type dist = {
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
}

val record : t -> string -> float -> unit
(** [record t name v] folds [v] into distribution [name]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f] and records its wall-clock seconds into
    distribution [name]; exactly [f ()] when disabled. *)

val get_dist : t -> string -> dist option
val dists : t -> (string * dist) list

(** {1 Events}

    A bounded log of discrete occurrences (index rebuilds, plan-cache
    probes, per-scan decisions).  The newest [ring] events are
    retained; the total emitted count is tracked so overflow is
    visible. *)

type event = {
  ev_seq : int;  (** position in the global emission order, from 0 *)
  ev_label : string;
  ev_detail : string;
}

val event : t -> string -> string -> unit
(** [event t label detail] appends to the ring. *)

val events : t -> event list
(** Retained events, oldest first. *)

val events_emitted : t -> int
val events_dropped : t -> int

(** {1 Rendering} *)

val pp_seconds : float -> string
(** ["1.234 s"], ["1.234 ms"] or ["1.2 us"] as magnitude dictates. *)

val summary_to_string : ?show_timings:bool -> ?with_events:bool -> t -> string
(** Human-readable dump of spans, counters, distributions and retained
    events.  [~show_timings:false] elides every wall-clock figure so
    the output is deterministic (used by golden tests);
    [~with_events:false] omits the raw event log (useful when the
    caller has already rendered a deduplicated view of it). *)
