(* A minimal growable array, used for table row storage (OCaml 5.1 has no
   stdlib Dynarray).  Indices are stable until a [filter_in_place]. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let of_list l =
  let data = Array.of_list l in
  { data; len = Array.length data }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = max 8 (max n (2 * Array.length v.data)) in
    let data = Array.make cap v.data.(0) in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if Array.length v.data = 0 then begin
    v.data <- Array.make 8 x;
    v.len <- 1
  end
  else begin
    ensure_capacity v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  v.len <- !j

let map_in_place f v =
  for i = 0 to v.len - 1 do
    v.data.(i) <- f v.data.(i)
  done

let clear v = v.len <- 0

(* Shallow copy of the live prefix; O(len).  Elements are shared. *)
let snapshot v = Array.sub v.data 0 v.len

(* A new vector record over the *same* backing array (elements shared,
   length pinned at the current value).  Used by copy-on-write snapshot
   publication: the frozen side keeps this record while the live side
   calls {!unshare} before its next in-place mutation. *)
let shallow v = { data = v.data; len = v.len }

(* Break backing-array sharing introduced by {!shallow}: replace [data]
   with a private copy so subsequent in-place mutation cannot reach rows
   a published snapshot still iterates. *)
let unshare v = if Array.length v.data > 0 then v.data <- Array.copy v.data

(* Replace the contents with [arr], taking ownership of the array. *)
let restore v arr =
  v.data <- arr;
  v.len <- Array.length arr

(* Drop elements beyond the first [n]; no-op if already shorter. *)
let truncate v n = if n >= 0 && n < v.len then v.len <- n

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0
