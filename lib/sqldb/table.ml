(* In-memory table storage: a schema plus a growable vector of rows.
   A row is a [Value.t array] positionally matching the schema. *)

type row = Value.t array

(* [version] counts mutations (insert / delete / update / clear): any
   cached derived structure over the rows — notably the lazily-built
   interval indexes in [indexes] — is valid only for the version at
   which it was built.  [indexes] maps a (begin column, end column)
   index pair to its interval index and the version it reflects. *)
(* [obs] is the trace sink index maintenance reports into; tables start
   on the shared null sink and are pointed at an engine's sink when
   added to its database (see {!Database.set_observe}). *)
(* [undo] is the database-wide undo journal this table participates in
   (see {!Database.with_atomic}); tables start on the shared inert
   journal and are pointed at a database's journal when added to it.
   [undo_mark] / [undo_full] implement at-most-one journal entry per
   savepoint scope (see [log_undo]). *)
(* [wal] is the durability hook (see {!Wal_hook}): when set, every
   mutation also emits a logical event for the write-ahead log.  Like
   [obs] and [undo] it is propagated by the owning database; tables not
   yet registered anywhere stay silent (their rows travel inside the
   [Table_create] event when they are registered). *)
(* [share] is the copy-on-write state for MVCC snapshot publication
   (see {!freeze}):
   - [Live]: sole owner of the backing row array; mutate in place.
   - [Shared]: a published frozen snapshot still references the backing
     array; the first mutation copies the array ({!Vec.unshare}) and
     returns to [Live], so readers of the snapshot never observe a torn
     mid-statement state.
   - [Frozen]: an immutable published snapshot (or a read view of one);
     any mutation attempt is a bug in write/read classification and
     raises a typed internal error instead of corrupting every reader. *)
type share = Live | Shared | Frozen

type t = {
  schema : Schema.t;
  rows : row Vec.t;
  mutable version : int;
  indexes : (int * int, int * row Interval_index.t) Hashtbl.t;
  mutable obs : Trace.t;
  mutable undo : Undo_log.t;
  mutable undo_mark : int;
  mutable undo_full : bool;
  mutable wal : Wal_hook.t option;
  mutable share : share;
}

let create schema =
  {
    schema;
    rows = Vec.create ();
    version = 0;
    indexes = Hashtbl.create 2;
    obs = Trace.null;
    undo = Undo_log.null;
    undo_mark = 0;
    undo_full = false;
    wal = None;
    share = Live;
  }

let set_observe t obs = t.obs <- obs
let set_undo t undo = t.undo <- undo
let set_wal t wal = t.wal <- wal

(* Journal an undo entry for the mutation about to happen — at most one
   per savepoint scope per table.  A destructive mutation snapshots the
   live row-pointer array (shallow: sound because every mutator copies a
   row before modifying it); an append-only mutation logs a cheaper
   truncate-to-previous-length entry, upgraded to a full snapshot if a
   destructive mutation follows in the same scope (rollback then runs the
   snapshot restore first, newest-first, and the truncate second, which
   yields the original prefix).  Undo *bumps* [version] instead of
   restoring it so a rolled-back mutation can never revalidate a stale
   interval index or cached plan. *)
let log_undo t ~full =
  if Undo_log.is_active t.undo then begin
    let snapshot_entry () =
      let saved = Vec.snapshot t.rows in
      Undo_log.log t.undo (fun () ->
          Vec.restore t.rows saved;
          t.version <- t.version + 1)
    in
    let mark = Undo_log.serial t.undo in
    if t.undo_mark < mark then begin
      t.undo_mark <- mark;
      t.undo_full <- full;
      if full then snapshot_entry ()
      else begin
        let len = Vec.length t.rows in
        Undo_log.log t.undo (fun () ->
            Vec.truncate t.rows len;
            t.version <- t.version + 1)
      end
    end
    else if full && not t.undo_full then begin
      t.undo_full <- true;
      snapshot_entry ()
    end
  end

(* Every mutator passes through here: copy-on-write check, fault
   injection point, undo journaling, then the version bump that
   invalidates derived caches. *)
let touch ?(append = false) t =
  (match t.share with
  | Live -> ()
  | Shared ->
      Vec.unshare t.rows;
      t.share <- Live
  | Frozen ->
      Taupsm_error.raise_error Taupsm_error.Internal
        "mutation of frozen snapshot table %s" t.schema.Schema.name);
  Fault.hit Fault.Table_mutation;
  log_undo t ~full:(not append);
  t.version <- t.version + 1

let of_rows schema rows =
  let t = create schema in
  List.iter (fun r -> Vec.push t.rows r) rows;
  t

let schema t = t.schema
let name t = t.schema.Schema.name
let row_count t = Vec.length t.rows

let check_row t (r : row) =
  let expected = Schema.arity t.schema in
  if Array.length r <> expected then
    invalid_arg
      (Printf.sprintf "Table %s: row arity %d, expected %d" (name t)
         (Array.length r) expected)

let insert t r =
  check_row t r;
  touch ~append:true t;
  (match t.wal with
  | None -> ()
  | Some w -> w.Wal_hook.emit (Wal_hook.Row_insert (name t, Array.copy r)));
  Vec.push t.rows r

let iter f t = Vec.iter f t.rows
let fold f init t = Vec.fold_left f init t.rows
let to_list t = Vec.to_list t.rows

(* Delete rows satisfying [p]; returns the number deleted.  With a WAL
   hook attached the removed positions (pre-delete numbering) are
   emitted, so recovery can replay the deletion positionally without
   re-evaluating the predicate. *)
let delete_where p t =
  let before = Vec.length t.rows in
  touch t;
  (match t.wal with
  | None -> Vec.filter_in_place (fun r -> not (p r)) t.rows
  | Some w ->
      let removed = ref [] in
      let i = ref (-1) in
      Vec.filter_in_place
        (fun r ->
          incr i;
          let gone = p r in
          if gone then removed := !i :: !removed;
          not gone)
        t.rows;
      if !removed <> [] then
        w.Wal_hook.emit
          (Wal_hook.Rows_delete
             (name t, Array.of_list (List.rev !removed))));
  before - Vec.length t.rows

(* Update rows satisfying [p] with [f]; returns the number updated.
   With a WAL hook attached the (position, new row) pairs are emitted;
   positions are stable because updates never reorder the vector. *)
let update_where p f t =
  let n = ref 0 in
  touch t;
  let changed = ref [] in
  let log = t.wal <> None in
  Vec.iteri
    (fun i r ->
      if p r then begin
        incr n;
        let r' = f r in
        if log then changed := (i, Array.copy r') :: !changed;
        Vec.set t.rows i r'
      end)
    t.rows;
  (match t.wal with
  | Some w when !changed <> [] ->
      w.Wal_hook.emit
        (Wal_hook.Rows_update (name t, Array.of_list (List.rev !changed)))
  | _ -> ());
  !n

let clear t =
  touch t;
  (match t.wal with
  | None -> ()
  | Some w -> w.Wal_hook.emit (Wal_hook.Table_clear (name t)));
  Vec.clear t.rows

let get_value t r cname = r.(Schema.column_index_exn t.schema cname)

(* The valid-time period of a row in a temporal table. *)
let row_period t (r : row) =
  let b = Value.to_date_exn r.(Schema.begin_index t.schema) in
  let e = Value.to_date_exn r.(Schema.end_index t.schema) in
  Period.make ~begin_:b ~end_:e

(* All valid-time periods in a temporal table. *)
let periods t = fold (fun acc r -> row_period t r :: acc) [] t

let copy t =
  let t' = create t.schema in
  iter (fun r -> Vec.push t'.rows (Array.copy r)) t;
  t'

(* A read-only view over this table's live storage: the row vector and
   schema are shared (no per-row copy), so the view is sound only while
   the original is not mutated.  Observation, undo and WAL wiring are
   severed — a view must never journal into or emit events for the
   original — and the index cache is a private copy: already-built
   interval indexes (immutable once built) are shared, while any index a
   view builds lazily lands in its own table, never racing with siblings
   reading the original's cache. *)
let read_view t =
  {
    schema = t.schema;
    rows = t.rows;
    version = t.version;
    indexes = Hashtbl.copy t.indexes;
    obs = Trace.null;
    undo = Undo_log.null;
    undo_mark = 0;
    undo_full = false;
    wal = None;
    (* A view of a frozen snapshot is itself frozen; a view of a live
       table keeps the live table's CoW discipline out of the picture —
       the view shares the backing array, so mutating it would corrupt
       the original.  Mark it frozen too: read views are read-only by
       contract, and the typed error beats silent corruption. *)
    share = Frozen;
  }

(* Publish an immutable snapshot of this table and switch the live table
   to copy-on-write.  The frozen record shares the current backing row
   array and a copy of the index cache (already-built indexes are
   immutable once built); the live table is marked [Shared] so its next
   mutation privatizes the array first.  O(1) in the number of rows.
   The caller must establish a happens-before edge (e.g. an [Atomic.set]
   of the published catalog) before handing the frozen table to another
   domain. *)
let freeze t =
  let fr =
    {
      schema = t.schema;
      rows = Vec.shallow t.rows;
      version = t.version;
      indexes = Hashtbl.copy t.indexes;
      obs = Trace.null;
      undo = Undo_log.null;
      undo_mark = 0;
      undo_full = false;
      wal = None;
      share = Frozen;
    }
  in
  (match t.share with Frozen -> () | Live | Shared -> t.share <- Shared);
  fr

(* ------------------------------------------------------------------ *)
(* Interval-indexed period-overlap scans                               *)
(* ------------------------------------------------------------------ *)

(* The interval index over the (bi, ei) date column pair, built lazily
   and rebuilt whenever the table has been mutated since. *)
let interval_index t ~bi ~ei =
  match Hashtbl.find_opt t.indexes (bi, ei) with
  | Some (v, idx) when v = t.version -> idx
  | stale ->
      Fault.hit Fault.Index_rebuild;
      let snapshot = Array.make (Vec.length t.rows) [||] in
      Vec.iteri (fun i r -> snapshot.(i) <- r) t.rows;
      let extract (r : row) =
        match (r.(bi), r.(ei)) with
        | Value.Date b, Value.Date e -> Some (b, e)
        | _ -> None
      in
      let idx = Interval_index.build ~extract snapshot in
      Hashtbl.replace t.indexes (bi, ei) (t.version, idx);
      if Trace.enabled t.obs then begin
        (* a stale entry means a previous build was invalidated by a
           mutation; a missing one is the first (lazy) build *)
        let kind = if stale = None then "index.build" else "index.rebuild" in
        Trace.count t.obs kind 1;
        Trace.event t.obs "index"
          (Printf.sprintf "%s table=%s cols=(%d,%d) rows=%d residuals=%d"
             (if stale = None then "build" else "rebuild")
             (name t) bi ei (row_count t)
             (Interval_index.residual_count idx))
      end;
      idx

(* Rows whose [bi]/[ei] period overlaps [begin_, end_) under the
   half-open test (begin < end_ AND end > begin_), plus any rows whose
   timestamp columns are not dates — a superset safe for exact
   re-filtering — in insertion order.  O(log n + k) per query against
   the cached index. *)
let overlapping t ~bi ~ei ~begin_ ~end_ =
  Interval_index.overlapping (interval_index t ~bi ~ei) ~begin_ ~end_

(* Rows whose (bi, ei) columns are not both dates.  When zero, every
   query result of {!overlapping} satisfies the overlap test exactly
   (no unchecked residuals), so callers may treat the window bounds as
   already-enforced predicates. *)
let overlap_residuals t ~bi ~ei =
  Interval_index.residual_count (interval_index t ~bi ~ei)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ %d row(s)@]" Schema.pp t.schema (row_count t)
