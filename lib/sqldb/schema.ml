(* Table schemas.

   Per the stratum data model, a temporal table is a conventional table
   whose two trailing columns are [begin_time]/[end_time] of type DATE;
   the catalog records valid-time support in [temporal].  A table with
   transaction-time support additionally carries system-maintained
   [tt_begin]/[tt_end] columns (after the valid-time pair, when both). *)

type column = { col_name : string; col_ty : Value.ty }

(* Temporal integrity constraints, fixed at CREATE TABLE time.  The
   schema record is shared between a table and its copies/read views
   (see [Table.copy]), so constraints are deliberately immutable. *)
type tconstraint =
  | Temporal_pk of string list
      (** no two current rows with equal key values may have overlapping
          valid-time periods *)
  | Temporal_fk of {
      fk_cols : string list;
      ref_table : string;
      ref_cols : string list;
    }
      (** every referencing row's period must be covered, without gaps, by
          the union of the matching referenced rows' periods *)

type t = {
  name : string;
  columns : column list;
  temporal : bool;  (** true iff the table has valid-time support *)
  transaction : bool;  (** true iff the table has transaction-time support *)
  constraints : tconstraint list;
      (** temporal integrity constraints; empty unless [temporal] *)
}

let begin_time_col = "begin_time"
let end_time_col = "end_time"
let tt_begin_col = "tt_begin"
let tt_end_col = "tt_end"

let column ~name ~ty = { col_name = name; col_ty = ty }

let make ?(transaction = false) ?(constraints = []) ~name ~columns ~temporal () =
  let columns =
    if temporal then
      columns
      @ [
          { col_name = begin_time_col; col_ty = Value.Tdate };
          { col_name = end_time_col; col_ty = Value.Tdate };
        ]
    else columns
  in
  let columns =
    if transaction then
      columns
      @ [
          { col_name = tt_begin_col; col_ty = Value.Tdate };
          { col_name = tt_end_col; col_ty = Value.Tdate };
        ]
    else columns
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = String.lowercase_ascii c.col_name in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s in %s" c.col_name name);
      Hashtbl.add seen key ())
    columns;
  if constraints <> [] && not temporal then
    invalid_arg
      (Printf.sprintf
         "Schema.make: temporal constraints on non-VALIDTIME table %s" name);
  { name; columns; temporal; transaction; constraints }

let arity s = List.length s.columns
let column_names s = List.map (fun c -> c.col_name) s.columns

let find_column s cname =
  let cname = String.lowercase_ascii cname in
  let rec go i = function
    | [] -> None
    | c :: rest ->
        if String.lowercase_ascii c.col_name = cname then Some (i, c) else go (i + 1) rest
  in
  go 0 s.columns

let column_index s cname =
  match find_column s cname with Some (i, _) -> Some i | None -> None

let column_index_exn s cname =
  match column_index s cname with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Schema: no column %s in table %s" cname s.name)

(* Index of the valid-time columns; only meaningful when [temporal]. *)
let begin_index s = column_index_exn s begin_time_col
let end_index s = column_index_exn s end_time_col

(* Index of the transaction-time columns; only meaningful when
   [transaction]. *)
let tt_begin_index s = column_index_exn s tt_begin_col
let tt_end_index s = column_index_exn s tt_end_col

let is_timestamp_col s cname =
  let c = String.lowercase_ascii cname in
  (s.temporal && (c = begin_time_col || c = end_time_col))
  || (s.transaction && (c = tt_begin_col || c = tt_end_col))

(* The schema without the trailing timestamp columns. *)
let data_columns s =
  List.filter (fun c -> not (is_timestamp_col s c.col_name)) s.columns

let temporal_pk s =
  List.find_map
    (function Temporal_pk cols -> Some cols | Temporal_fk _ -> None)
    s.constraints

let temporal_fks s =
  List.filter_map
    (function
      | Temporal_fk { fk_cols; ref_table; ref_cols } ->
          Some (fk_cols, ref_table, ref_cols)
      | Temporal_pk _ -> None)
    s.constraints

let pp ppf s =
  Format.fprintf ppf "@[<hv 2>%s(%a)%s@]" s.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c -> Format.fprintf ppf "%s %s" c.col_name (Value.ty_to_string c.col_ty)))
    s.columns
    (match (s.temporal, s.transaction) with
    | true, true -> " WITH VALIDTIME AND TRANSACTIONTIME"
    | true, false -> " WITH VALIDTIME"
    | false, true -> " WITH TRANSACTIONTIME"
    | false, false -> "")
