(* The storage side of the durability contract.

   A hooked database reports every committed-state change as a logical
   [event]; the durable layer (lib/durable) turns events into
   checksummed write-ahead-log records.  Keeping the event type here —
   below the WAL implementation — lets [Table] and [Database] emit
   without depending on the file format, and lets the engine catalog
   (one layer up) funnel view/routine DDL through the same channel as
   opaque SQL text.

   Protocol: [emit] buffers an event for the statement in flight;
   {!Database.with_atomic} calls [commit] when the outermost atomic
   unit succeeds (the durable layer then appends the buffered records
   plus a commit marker) and [abort] when it rolls back (the buffer is
   discarded — a rolled-back statement leaves no trace on disk).
   Nested atomic scopes mirror the undo journal's savepoints:
   [savepoint] marks the buffer position and [rollback_to] drops every
   event emitted past the mark, so a nested rollback whose exception
   is later swallowed (the enclosing statement still commits) cannot
   leak its undone events into the WAL.  Undo replay itself emits no
   events. *)

type event =
  | Row_insert of string * Value.t array  (* table name, appended row *)
  | Rows_delete of string * int array
      (* positions removed, ascending, in pre-delete row numbering *)
  | Rows_update of string * (int * Value.t array) array
      (* (position, new row) pairs; positions are stable across the op *)
  | Table_clear of string
  | Table_create of Schema.t * bool * Value.t array list
      (* schema, [temp?], rows present at registration time (CREATE
         TABLE AS and bulk [of_rows] loads insert before registering) *)
  | Table_drop of string
  | Temp_tables_drop  (* Database.drop_temp_tables *)
  | Catalog_ddl of string
      (* a view / routine definition as one conventional SQL statement,
         re-parseable by the recovery path *)

type t = {
  emit : event -> unit;
  commit : unit -> unit;
  abort : unit -> unit;
  savepoint : unit -> int;  (* count of events buffered so far *)
  rollback_to : int -> unit;  (* drop events buffered past the mark *)
}

let event_name = function
  | Row_insert _ -> "row_insert"
  | Rows_delete _ -> "rows_delete"
  | Rows_update _ -> "rows_update"
  | Table_clear _ -> "table_clear"
  | Table_create _ -> "table_create"
  | Table_drop _ -> "table_drop"
  | Temp_tables_drop -> "temp_tables_drop"
  | Catalog_ddl _ -> "catalog_ddl"
