(* The storage-level catalog: named base tables and temporary tables.
   Views and stored routines carry SQL ASTs, so their registries live one
   layer up, in the engine (lib/sqleval).  Names are case-insensitive. *)

(* [version] counts changes to the *visible schema* of the database
   (table creation and removal) and is the storage half of the stratum's
   plan-cache invalidation token.  Re-creating a temporary table with an
   unchanged schema — the per-execution churn of the stratum's own
   taupsm_ts/taupsm_cp scratch tables — deliberately does not bump it,
   so cached transformed plans survive their own execution. *)
type t = {
  tables : (string, Table.t) Hashtbl.t;
  temp_tables : (string, Table.t) Hashtbl.t;
  mutable version : int;
  mutable obs : Trace.t;  (* propagated onto every table added here *)
}

let create () =
  {
    tables = Hashtbl.create 16;
    temp_tables = Hashtbl.create 16;
    version = 0;
    obs = Trace.null;
  }

(* Point this database — and every table it holds now or later — at
   [obs].  The engine layer calls this once per catalog so storage-level
   events (index builds) land in the same sink as evaluator events. *)
let set_observe db obs =
  db.obs <- obs;
  Hashtbl.iter (fun _ t -> Table.set_observe t obs) db.tables;
  Hashtbl.iter (fun _ t -> Table.set_observe t obs) db.temp_tables

let version db = db.version

let key = String.lowercase_ascii

exception No_such_table of string
exception Duplicate_table of string

let find_table db name =
  let k = key name in
  match Hashtbl.find_opt db.temp_tables k with
  | Some t -> Some t
  | None -> Hashtbl.find_opt db.tables k

let find_table_exn db name =
  match find_table db name with Some t -> t | None -> raise (No_such_table name)

let mem db name = find_table db name <> None

let add_table db table =
  let k = key (Table.name table) in
  if Hashtbl.mem db.tables k then raise (Duplicate_table (Table.name table));
  db.version <- db.version + 1;
  Table.set_observe table db.obs;
  Hashtbl.replace db.tables k table

(* Temporary tables shadow base tables and may be re-created freely.
   The version bumps only when the visible schema under that name
   actually changes (see the [version] comment above). *)
let add_temp_table db table =
  let k = key (Table.name table) in
  let visible_schema =
    match Hashtbl.find_opt db.temp_tables k with
    | Some t -> Some (Table.schema t)
    | None -> Option.map Table.schema (Hashtbl.find_opt db.tables k)
  in
  if visible_schema <> Some (Table.schema table) then
    db.version <- db.version + 1;
  Table.set_observe table db.obs;
  Hashtbl.replace db.temp_tables k table

let drop_table db name =
  let k = key name in
  if Hashtbl.mem db.temp_tables k then begin
    db.version <- db.version + 1;
    Hashtbl.remove db.temp_tables k
  end
  else if Hashtbl.mem db.tables k then begin
    db.version <- db.version + 1;
    Hashtbl.remove db.tables k
  end
  else raise (No_such_table name)

let drop_temp_tables db =
  if Hashtbl.length db.temp_tables > 0 then db.version <- db.version + 1;
  Hashtbl.reset db.temp_tables

let table_names db =
  Hashtbl.fold (fun _ t acc -> Table.name t :: acc) db.tables []
  |> List.sort String.compare

(* A deep copy, used by tests and by the commutativity checker to evaluate
   the same workload against multiple strategies without interference. *)
let copy db =
  let db' = create () in
  Hashtbl.iter (fun k t -> Hashtbl.replace db'.tables k (Table.copy t)) db.tables;
  Hashtbl.iter
    (fun k t -> Hashtbl.replace db'.temp_tables k (Table.copy t))
    db.temp_tables;
  db'
