(* The storage-level catalog: named base tables and temporary tables.
   Views and stored routines carry SQL ASTs, so their registries live one
   layer up, in the engine (lib/sqleval).  Names are case-insensitive. *)

(* [version] counts changes to the *base* visible schema of the
   database (table creation and removal) and is the storage half of the
   stratum's plan-cache invalidation token.  Temporary-table churn is
   counted separately in [temp_epoch]: a temp table can shadow a base
   table — which changes what statements mean, so the plan cache must
   see it — but it is session noise to the learned calibration and the
   constant-period memo, whose validity tracks only durable schema.
   Re-creating a temporary table with an unchanged visible schema — the
   per-execution churn of the stratum's own taupsm_ts/taupsm_cp scratch
   tables — bumps neither counter, so cached transformed plans survive
   their own execution. *)
(* [undo] is the database-wide undo journal; it is propagated onto every
   table added here (like [obs]) and driven by {!with_atomic}. *)
(* [wal] is the durability hook (see {!Wal_hook}), installed by the
   durable store and propagated onto every table (like [obs] and
   [undo]).  [copy] deliberately does not carry it: engine copies made
   by benchmarks and the commutativity checker are volatile. *)
type t = {
  tables : (string, Table.t) Hashtbl.t;
  temp_tables : (string, Table.t) Hashtbl.t;
  mutable version : int;
  mutable temp_epoch : int;  (* temp-table shadowing churn; see above *)
  mutable obs : Trace.t;  (* propagated onto every table added here *)
  undo : Undo_log.t;
  mutable wal : Wal_hook.t option;
}

let create () =
  {
    tables = Hashtbl.create 16;
    temp_tables = Hashtbl.create 16;
    version = 0;
    temp_epoch = 0;
    obs = Trace.null;
    undo = Undo_log.create ();
    wal = None;
  }

(* Point this database — and every table it holds now or later — at
   [obs].  The engine layer calls this once per catalog so storage-level
   events (index builds) land in the same sink as evaluator events. *)
let set_observe db obs =
  db.obs <- obs;
  Hashtbl.iter (fun _ t -> Table.set_observe t obs) db.tables;
  Hashtbl.iter (fun _ t -> Table.set_observe t obs) db.temp_tables

let version db = db.version
let temp_epoch db = db.temp_epoch

(* Point this database — and every table it holds now or later — at the
   durability hook [wal] (or detach with [None]). *)
let set_wal db wal =
  db.wal <- wal;
  Hashtbl.iter (fun _ t -> Table.set_wal t wal) db.tables;
  Hashtbl.iter (fun _ t -> Table.set_wal t wal) db.temp_tables

let wal db = db.wal

(* Emit a durability event on behalf of this database or an upper layer
   (the engine catalog routes view/routine DDL through here).  No-op
   when no hook is attached. *)
let wal_emit db ev =
  match db.wal with None -> () | Some w -> w.Wal_hook.emit ev

(* Statement-boundary notifications for the non-atomic execution path;
   {!with_atomic} drives these itself for atomic statements. *)
let wal_commit db =
  match db.wal with None -> () | Some w -> w.Wal_hook.commit ()

let wal_abort db =
  match db.wal with None -> () | Some w -> w.Wal_hook.abort ()

let wal_savepoint db =
  match db.wal with None -> 0 | Some w -> w.Wal_hook.savepoint ()

let wal_rollback_to db sp =
  match db.wal with None -> () | Some w -> w.Wal_hook.rollback_to sp

let key = String.lowercase_ascii

exception No_such_table of string
exception Duplicate_table of string

let find_table db name =
  let k = key name in
  match Hashtbl.find_opt db.temp_tables k with
  | Some t -> Some t
  | None -> Hashtbl.find_opt db.tables k

let find_table_exn db name =
  match find_table db name with Some t -> t | None -> raise (No_such_table name)

let mem db name = find_table db name <> None

let add_table db table =
  let k = key (Table.name table) in
  if Hashtbl.mem db.tables k then raise (Duplicate_table (Table.name table));
  db.version <- db.version + 1;
  Table.set_observe table db.obs;
  Table.set_undo table db.undo;
  Table.set_wal table db.wal;
  wal_emit db
    (Wal_hook.Table_create (Table.schema table, false, Table.to_list table));
  Undo_log.log db.undo (fun () ->
      Hashtbl.remove db.tables k;
      db.version <- db.version + 1);
  Hashtbl.replace db.tables k table

(* Temporary tables shadow base tables and may be re-created freely.
   The version bumps only when the visible schema under that name
   actually changes (see the [version] comment above). *)
let add_temp_table db table =
  let k = key (Table.name table) in
  let visible_schema =
    match Hashtbl.find_opt db.temp_tables k with
    | Some t -> Some (Table.schema t)
    | None -> Option.map Table.schema (Hashtbl.find_opt db.tables k)
  in
  if visible_schema <> Some (Table.schema table) then
    db.temp_epoch <- db.temp_epoch + 1;
  Table.set_observe table db.obs;
  Table.set_undo table db.undo;
  Table.set_wal table db.wal;
  wal_emit db
    (Wal_hook.Table_create (Table.schema table, true, Table.to_list table));
  (if Undo_log.is_active db.undo then
     let prev = Hashtbl.find_opt db.temp_tables k in
     Undo_log.log db.undo (fun () ->
         (match prev with
         | None -> Hashtbl.remove db.temp_tables k
         | Some t -> Hashtbl.replace db.temp_tables k t);
         db.temp_epoch <- db.temp_epoch + 1));
  Hashtbl.replace db.temp_tables k table

let drop_table db name =
  let k = key name in
  let drop_from ~bump tables =
    bump ();
    wal_emit db (Wal_hook.Table_drop name);
    (if Undo_log.is_active db.undo then
       let prev = Hashtbl.find tables k in
       Undo_log.log db.undo (fun () ->
           Hashtbl.replace tables k prev;
           bump ()));
    Hashtbl.remove tables k
  in
  let bump_base () = db.version <- db.version + 1 in
  let bump_temp () = db.temp_epoch <- db.temp_epoch + 1 in
  if Hashtbl.mem db.temp_tables k then
    drop_from ~bump:bump_temp db.temp_tables
  else if Hashtbl.mem db.tables k then drop_from ~bump:bump_base db.tables
  else raise (No_such_table name)

let drop_temp_tables db =
  if Hashtbl.length db.temp_tables > 0 then begin
    db.temp_epoch <- db.temp_epoch + 1;
    wal_emit db Wal_hook.Temp_tables_drop;
    if Undo_log.is_active db.undo then begin
      let prev = Hashtbl.fold (fun k t acc -> (k, t) :: acc) db.temp_tables [] in
      Undo_log.log db.undo (fun () ->
          List.iter (fun (k, t) -> Hashtbl.replace db.temp_tables k t) prev;
          db.temp_epoch <- db.temp_epoch + 1)
    end
  end;
  Hashtbl.reset db.temp_tables

let table_names db =
  Hashtbl.fold (fun _ t acc -> Table.name t :: acc) db.tables []
  |> List.sort String.compare

(* Direct enumerations for the durable layer's snapshot writer: unlike
   {!find_table} these never apply temp-over-base shadowing, so a
   snapshot captures both tables under a shadowed name. *)
let by_name a b = String.compare (Table.name a) (Table.name b)

let base_tables db =
  Hashtbl.fold (fun _ t acc -> t :: acc) db.tables [] |> List.sort by_name

let temp_tables db =
  Hashtbl.fold (fun _ t acc -> t :: acc) db.temp_tables [] |> List.sort by_name

(* A deep copy, used by tests and by the commutativity checker to evaluate
   the same workload against multiple strategies without interference. *)
let copy db =
  let db' = create () in
  let clone t =
    let t' = Table.copy t in
    Table.set_undo t' db'.undo;
    t'
  in
  Hashtbl.iter (fun k t -> Hashtbl.replace db'.tables k (clone t)) db.tables;
  Hashtbl.iter
    (fun k t -> Hashtbl.replace db'.temp_tables k (clone t))
    db.temp_tables;
  db'

(* A read-only snapshot view: every table becomes a {!Table.read_view}
   (shared row storage, private index cache, no obs/undo/wal wiring) in
   fresh name tables, and the schema version is preserved so plan-cache
   validity tokens computed against the view match the original.  The
   view has its own (inactive) undo journal and no WAL hook; callers
   must not mutate the shared base tables through it, but may freely
   shadow them with view-local temp tables.  Sound only while the
   original is not mutated — the parallel evaluator guarantees this by
   construction (read-only sliced queries). *)
let read_view db =
  let db' =
    {
      tables = Hashtbl.create (Hashtbl.length db.tables);
      temp_tables = Hashtbl.create (max 16 (Hashtbl.length db.temp_tables));
      version = db.version;
      temp_epoch = db.temp_epoch;
      obs = Trace.null;
      undo = Undo_log.create ();
      wal = None;
    }
  in
  let view t =
    let t' = Table.read_view t in
    Table.set_undo t' db'.undo;
    t'
  in
  Hashtbl.iter (fun k t -> Hashtbl.replace db'.tables k (view t)) db.tables;
  Hashtbl.iter
    (fun k t -> Hashtbl.replace db'.temp_tables k (view t))
    db.temp_tables;
  db'

(* Publish an immutable snapshot of this database and switch every live
   table to copy-on-write (see {!Table.freeze}).  O(tables), not O(rows):
   each table contributes a new record sharing its backing row array plus
   a copy of its index cache.  The snapshot has no obs/undo/wal wiring
   and preserves [version] so plan-cache tokens computed against it match
   the live database at publication time.  Unlike {!read_view} the result
   is safe to retain across later mutations of the original: the first
   post-freeze mutation of each table privatizes its storage. *)
let freeze db =
  let db' =
    {
      tables = Hashtbl.create (max 16 (Hashtbl.length db.tables));
      temp_tables = Hashtbl.create (max 16 (Hashtbl.length db.temp_tables));
      version = db.version;
      temp_epoch = db.temp_epoch;
      obs = Trace.null;
      undo = Undo_log.create ();
      wal = None;
    }
  in
  Hashtbl.iter (fun k t -> Hashtbl.replace db'.tables k (Table.freeze t)) db.tables;
  Hashtbl.iter
    (fun k t -> Hashtbl.replace db'.temp_tables k (Table.freeze t))
    db.temp_tables;
  db'

let undo db = db.undo

(* Run [f] as an atomic unit against this database.  The outermost call
   activates the undo journal: on success the journal is discarded
   (commit), on any exception the journal is replayed so the database —
   rows, temp-table bindings, catalog entries logged by upper layers —
   returns to its pre-call state (with version counters bumped, never
   rewound).  A nested call degrades to a savepoint: rollback on
   exception, nothing on success (the enclosing unit owns the commit).

   The outermost boundary also drives the durability hook: commit on
   success (the WAL appends the buffered records plus a commit marker),
   abort on rollback (the buffer is discarded).  Savepoint scopes keep
   the WAL buffer in step with the undo journal: the nested rollback's
   exception may be swallowed upstream (e.g. a lateral-subquery probe),
   letting the enclosing unit commit, so the inner unit's buffered
   events must be dropped here or recovery would replay effects that
   were undone in memory. *)
let with_atomic db f =
  let j = db.undo in
  if Undo_log.is_active j then begin
    let sp = Undo_log.savepoint j in
    let wsp = wal_savepoint db in
    try f ()
    with e ->
      Undo_log.rollback_to j sp;
      wal_rollback_to db wsp;
      raise e
  end
  else begin
    Undo_log.activate j;
    match f () with
    | r -> (
        (* Durability decides first: only once the WAL has accepted the
           commit group may the undo journal be discarded.  If the
           commit fails (ENOSPC mid-append — the store erases the
           half-appended group and stays live), the journal rolls the
           in-memory effects back too, so disk and memory agree the
           statement never happened. *)
        match wal_commit db with
        | () ->
            Undo_log.deactivate j;
            Undo_log.clear j;
            r
        | exception e ->
            Undo_log.rollback_to j (Undo_log.top j);
            Undo_log.deactivate j;
            Undo_log.clear j;
            raise e)
    | exception e ->
        Undo_log.rollback_to j (Undo_log.top j);
        Undo_log.deactivate j;
        Undo_log.clear j;
        wal_abort db;
        raise e
  end
