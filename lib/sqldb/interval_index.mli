(** A static interval index over half-open [int] intervals [[b, e)]:
    items sorted by begin with an augmented (segment-tree) running max
    of end, answering period-overlap ("stabbing") queries in
    O(log n + k) instead of O(n).

    The index is built once from a snapshot of the items and is
    immutable; callers are responsible for rebuilding after mutation
    (see {!Table}'s version counter).  Items whose interval cannot be
    extracted ([extract] returns [None]) are kept in a residual set that
    every query returns, so the result is always a superset of the
    matching items and an exact re-check downstream stays cheap and
    safe.

    All query results preserve the original item order (the order of
    the array given to {!build}), so an indexed scan is
    order-indistinguishable from a filtered full scan. *)

type 'a t

val build : extract:('a -> (int * int) option) -> 'a array -> 'a t
(** [build ~extract items] indexes every item for which [extract]
    returns [Some (begin_, end_)].  Intervals are half-open; empty and
    inverted intervals ([end_ <= begin_]) are indexed as given and
    match exactly when the raw overlap test holds (e.g. a probe
    strictly containing an empty interval's point matches it) — exact
    period semantics are the caller's re-check. *)

val length : 'a t -> int
(** Total number of items (indexed + residual). *)

val residual_count : 'a t -> int
(** Items for which [extract] returned [None]; returned by every
    query. *)

val overlapping : 'a t -> begin_:int -> end_:int -> 'a list
(** Items whose interval [[b, e)] satisfies [b < end_ && e > begin_]
    (the half-open overlap test), plus all residual items, in original
    order.  [overlapping ~begin_:min_int ~end_:max_int] returns every
    item. *)

val stabbing : 'a t -> at:int -> 'a list
(** Items valid at the instant [at] ([b <= at < e]), plus residuals:
    [overlapping ~begin_:at ~end_:(at + 1)]. *)
