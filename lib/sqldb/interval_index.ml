(* A static interval index: items sorted by interval begin, augmented
   with a segment tree holding the maximum interval end per range of the
   sorted order.

   A query [overlapping ~begin_ ~end_] must report items with
   b < end_ && e > begin_.  Sorting by b makes the first condition a
   prefix of the sorted order (found by binary search); the segment tree
   prunes, within that prefix, every range whose maximum end is
   <= begin_.  A reported item costs O(log n); a pruned subtree costs
   O(1); total O(log n + k log n) worst case, O(log n + k) on the
   clustered layouts temporal tables actually have.

   Items with no extractable interval (residuals) are returned by every
   query, so results are supersets suitable for exact re-filtering. *)

type 'a t = {
  begins : int array;  (* interval begins, ascending *)
  pos : int array;  (* parallel original positions *)
  items : 'a array;  (* parallel items *)
  tree : int array;  (* segment-tree max of [ends]; size 2*width *)
  width : int;  (* leaves of the tree, >= Array.length begins *)
  residual : (int * 'a) list;  (* (original position, item), ascending *)
  total : int;
}

let length t = t.total
let residual_count t = List.length t.residual

let build ~extract (items : 'a array) : 'a t =
  let indexed = ref [] and residual = ref [] and n = ref 0 in
  Array.iteri
    (fun i x ->
      match extract x with
      | Some (b, e) ->
          incr n;
          indexed := (b, e, i, x) :: !indexed
      | None -> residual := (i, x) :: !residual)
    items;
  let n = !n in
  let arr = Array.of_list (List.rev !indexed) in
  (* Sort by begin; ties by original position keep the order stable. *)
  Array.sort
    (fun (b1, _, p1, _) (b2, _, p2, _) ->
      match Int.compare b1 b2 with 0 -> Int.compare p1 p2 | c -> c)
    arr;
  let begins = Array.map (fun (b, _, _, _) -> b) arr in
  let ends = Array.map (fun (_, e, _, _) -> e) arr in
  let pos = Array.map (fun (_, _, p, _) -> p) arr in
  let sorted_items = Array.map (fun (_, _, _, x) -> x) arr in
  (* Power-of-two bottom-up segment tree over [ends]. *)
  let width =
    let w = ref 1 in
    while !w < n do
      w := !w * 2
    done;
    !w
  in
  let tree = Array.make (2 * width) min_int in
  Array.blit ends 0 tree width n;
  for i = width - 1 downto 1 do
    tree.(i) <- max tree.(2 * i) tree.((2 * i) + 1)
  done;
  {
    begins;
    pos;
    items = sorted_items;
    tree;
    width;
    residual = List.rev !residual;
    total = Array.length items;
  }

(* First index whose begin is >= [e] (the end of the prefix with
   begin < e). *)
let prefix_end t e =
  let lo = ref 0 and hi = ref (Array.length t.begins) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.begins.(mid) < e then lo := mid + 1 else hi := mid
  done;
  !lo

let overlapping t ~begin_ ~end_ : 'a list =
  let hi = prefix_end t end_ in
  let hits = ref [] in
  (* Collect indexed matches in [0, hi) with end > begin_, descending
     the segment tree and pruning ranges whose max end is <= begin_. *)
  let rec collect node node_lo node_hi =
    if node_lo < hi && t.tree.(node) > begin_ then
      if node >= t.width then
        hits := (t.pos.(node_lo), t.items.(node_lo)) :: !hits
      else begin
        let mid = (node_lo + node_hi) / 2 in
        collect (2 * node) node_lo mid;
        collect ((2 * node) + 1) mid node_hi
      end
  in
  if Array.length t.begins > 0 then collect 1 0 t.width;
  (* Merge indexed hits with residuals back into original order.  The
     tree yields hits in begin-sorted order; sorting the k hits by
     position restores the scan order exactly (O(k log k), k << n). *)
  let hits =
    List.sort (fun (p1, _) (p2, _) -> Int.compare p1 p2) !hits
  in
  let rec merge a b =
    match (a, b) with
    | [], rest | rest, [] -> List.map snd rest
    | (pa, xa) :: ta, (pb, xb) :: tb ->
        if pa <= pb then xa :: merge ta b else xb :: merge a tb
  in
  merge hits t.residual

let stabbing t ~at = overlapping t ~begin_:at ~end_:(at + 1)
